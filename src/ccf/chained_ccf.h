// Chained CCF (§6.2): fingerprint-vector entries with the paper's chaining
// technique. A bucket pair holds at most d copies of a fingerprint; further
// duplicates walk to ℓ̃ = h(min{ℓ,ℓ′}, κ) and so on (Algorithms 4 and 5),
// preserving no-false-negatives (Theorem 3).
#ifndef CCF_CCF_CHAINED_CCF_H_
#define CCF_CCF_CHAINED_CCF_H_

#include <memory>

#include "ccf/ccf_base.h"

namespace ccf {

/// \brief Fingerprint-vector CCF with duplicate-key chaining.
class ChainedCcf : public CcfBase {
 public:
  static Result<std::unique_ptr<ConditionalCuckooFilter>> Make(
      const CcfConfig& config);

  /// Inserts per Algorithm 4. Outcomes:
  ///  * OK — stored, or safely absorbed: when every chain pair up to Lmax is
  ///    full of κ copies the row is dropped but queries for it return true
  ///    regardless (Theorem 3's terminal case), counted in
  ///    num_overflow_rows().
  ///  * CapacityError — a cuckoo kick budget was exhausted; the row is NOT
  ///    represented and the caller must stop/resize (this is the "failed
  ///    insertion" event of Figure 4).
  Status Insert(uint64_t key, std::span<const uint64_t> attrs) override;

  bool ContainsKey(uint64_t key) const override;
  bool Contains(uint64_t key, const Predicate& pred) const override;
  Result<std::unique_ptr<KeyFilter>> PredicateQuery(
      const Predicate& pred) const override;
  CcfVariant variant() const override { return CcfVariant::kChained; }

  /// Rows absorbed by the chain-cap terminal case (always answered true).
  uint64_t num_overflow_rows() const { return num_overflow_rows_; }

  /// Longest chain walked by any insertion so far (diagnostics).
  int max_chain_seen() const { return max_chain_seen_; }

 protected:
  void SaveExtras(ByteWriter* writer) const override;
  Status LoadExtras(ByteReader* reader) override;

 private:
  ChainedCcf(CcfConfig config, BucketTable table);

  AttrFingerprintCodec codec_;
  uint64_t num_overflow_rows_ = 0;
  int max_chain_seen_ = 0;
};

}  // namespace ccf

#endif  // CCF_CCF_CHAINED_CCF_H_
