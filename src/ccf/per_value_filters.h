// The naive alternative the CCF replaces (§5): "the alternative which
// stores a separate filter for each combination of predicate values. Such a
// strategy would grow exponentially in size." This strawman materializes one
// cuckoo filter per observed (attribute, value) combination, giving exact
// per-predicate key filters at a size that explodes with cardinality —
// quantified against CCFs in bench/ablation_strawman.
#ifndef CCF_CCF_PER_VALUE_FILTERS_H_
#define CCF_CCF_PER_VALUE_FILTERS_H_

#include <map>
#include <memory>
#include <vector>

#include "cuckoo/cuckoo_filter.h"
#include "predicate/predicate.h"

namespace ccf {

/// \brief One key filter per observed single-column value (the simplest
/// version of the exponential strawman: conjunctions across columns are
/// answered by intersecting per-column answers, which already loses row
/// co-occurrence like the Bloom sketch does).
class PerValueFilterBank {
 public:
  /// Builds from rows; one cuckoo filter per (column, value) pair.
  static Result<PerValueFilterBank> Build(
      int num_attrs, int fingerprint_bits,
      const std::vector<uint64_t>& keys,
      const std::vector<std::vector<uint64_t>>& attrs, uint64_t salt = 0);

  /// True if `key` may satisfy the predicate (conjunction over columns; OR
  /// within each in-list).
  Result<bool> Contains(uint64_t key, const Predicate& pred) const;

  /// Total size of all per-value filters.
  uint64_t SizeInBits() const;
  /// Number of materialized filters (grows with Σ column cardinalities).
  size_t num_filters() const { return filters_.size(); }

 private:
  PerValueFilterBank() = default;

  // (attr index, value) → filter over keys having that value.
  std::map<std::pair<int, uint64_t>, CuckooFilter> filters_;
};

}  // namespace ccf

#endif  // CCF_CCF_PER_VALUE_FILTERS_H_
