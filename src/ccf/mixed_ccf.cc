#include "ccf/mixed_ccf.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_set>

#include "ccf/entry_match.h"
#include "util/math_util.h"

namespace ccf {

namespace {

// Eq. (2)/(3): optimal probes given |B| = d·(#α·|α|) bits and (d+1)·#α
// items; otherwise the fixed setting.
int ConversionHashes(const CcfConfig& config) {
  if (!config.optimize_bloom_hashes) return config.bloom_hashes;
  double total_bits = static_cast<double>(config.max_dupes) *
                      config.num_attrs * config.attr_fp_bits;
  double n = static_cast<double>(config.max_dupes + 1) * config.num_attrs;
  double k = total_bits / n * std::numbers::ln2_v<double>;
  return std::clamp(static_cast<int>(std::lround(k)), 1, 16);
}

}  // namespace

MixedCcf::MixedCcf(CcfConfig config, BucketTable table)
    : CcfBase(config, std::move(table)),
      codec_(&hasher_, config.num_attrs, config.attr_fp_bits,
             config.small_value_opt),
      seq_bits_(CeilLog2(static_cast<uint64_t>(config.max_dupes))),
      vec_base_(1 + seq_bits_),
      vec_bits_(config.num_attrs * config.attr_fp_bits),
      conversion_hashes_(ConversionHashes(config)) {}

Result<std::unique_ptr<ConditionalCuckooFilter>> MixedCcf::Make(
    const CcfConfig& config) {
  int seq_bits = CeilLog2(static_cast<uint64_t>(config.max_dupes));
  CCF_ASSIGN_OR_RETURN(
      BucketTable table,
      BucketTable::Make(config.num_buckets, config.slots_per_bucket,
                        config.key_fp_bits,
                        1 + seq_bits +
                            config.num_attrs * config.attr_fp_bits));
  return std::unique_ptr<ConditionalCuckooFilter>(
      new MixedCcf(config, std::move(table)));
}

std::vector<std::pair<uint64_t, int>> MixedCcf::CanonicalFragments(
    const BucketPair& pair, uint32_t fp) const {
  std::vector<std::pair<uint64_t, int>> frags;
  for (const auto& [b, s] : SlotsWithFp(pair, fp)) {
    if (IsConverted(b, s)) frags.emplace_back(b, s);
  }
  std::sort(frags.begin(), frags.end(),
            [this](const auto& a, const auto& b) {
              return SeqOf(a.first, a.second) < SeqOf(b.first, b.second);
            });
  return frags;
}

BloomSketchView MixedCcf::FragmentSketch(
    const std::vector<std::pair<uint64_t, int>>& frags) const {
  std::vector<std::pair<size_t, size_t>> segments;
  segments.reserve(frags.size());
  for (const auto& [b, s] : frags) {
    segments.emplace_back(
        table_->PayloadBitOffset(b, s) + static_cast<size_t>(vec_base_),
        static_cast<size_t>(vec_bits_));
  }
  auto* bits = const_cast<BitVector*>(table_->bits());
  return BloomSketchView(bits, std::move(segments), &hasher_,
                         conversion_hashes_);
}

void MixedCcf::FoldRowIntoSketch(BloomSketchView* sketch,
                                 std::span<const uint64_t> attrs) const {
  // Algorithm 3 inserts attribute FINGERPRINTS (not raw values), stacking
  // the two collision sources the paper describes.
  for (size_t i = 0; i < attrs.size(); ++i) {
    sketch->Insert(BloomSketchView::EncodeAttr(
        static_cast<uint32_t>(i), codec_.ValueFingerprint(attrs[i])));
  }
}

bool MixedCcf::SketchMatches(const BloomSketchView& sketch,
                             const Predicate& pred) const {
  for (const AttributeTerm& term : pred.terms()) {
    bool any = false;
    for (uint64_t v : term.values) {
      if (sketch.Contains(BloomSketchView::EncodeAttr(
              static_cast<uint32_t>(term.attr_index),
              codec_.ValueFingerprint(v)))) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

void MixedCcf::ConvertToBloom(const BucketPair& pair, uint32_t fp,
                              std::span<const uint64_t> attrs) {
  auto slots = SlotsWithFp(pair, fp);
  CCF_DCHECK(static_cast<int>(slots.size()) == config_.max_dupes);
  std::sort(slots.begin(), slots.end());

  // Capture the d stored fingerprint vectors before clearing the windows.
  std::vector<std::vector<uint32_t>> old_vectors;
  old_vectors.reserve(slots.size());
  for (const auto& [b, s] : slots) {
    std::vector<uint32_t> vec(static_cast<size_t>(config_.num_attrs));
    for (int i = 0; i < config_.num_attrs; ++i) {
      vec[static_cast<size_t>(i)] = codec_.Load(*table_, b, s, vec_base_, i);
    }
    old_vectors.push_back(std::move(vec));
  }

  uint64_t seq = 0;
  for (const auto& [b, s] : slots) {
    table_->ClearPayload(b, s);
    SetConverted(b, s, true);
    SetSeq(b, s, seq++);
  }

  BloomSketchView sketch = FragmentSketch(slots);
  for (const auto& vec : old_vectors) {
    for (size_t i = 0; i < vec.size(); ++i) {
      sketch.Insert(BloomSketchView::EncodeAttr(static_cast<uint32_t>(i),
                                                vec[i]));
    }
  }
  FoldRowIntoSketch(&sketch, attrs);
  ++num_conversions_;
}

Status MixedCcf::Insert(uint64_t key, std::span<const uint64_t> attrs) {
  if (static_cast<int>(attrs.size()) != config_.num_attrs) {
    return Status::Invalid("attribute count does not match schema");
  }
  EnsureTableUnique();
  uint64_t bucket;
  uint32_t fp;
  KeyAddress(key, &bucket, &fp);
  BucketPair pair = PairOf(bucket, fp);
  // Packed-compare scalar fast path (opt-in via
  // CcfConfig::reproducible_scalar = false); falls through to the full
  // addressed insertion when displacement or chain/conversion work is
  // needed.
  if (ScalarInsertFast(pair, fp, attrs)) return Status::OK();
  return InsertAddressed(pair, fp, attrs);
}

Status MixedCcf::InsertAddressed(const BucketPair& pair, uint32_t fp,
                                 std::span<const uint64_t> attrs) {
  // Already converted: fold into the packed Bloom filter (never fails).
  auto frags = CanonicalFragments(pair, fp);
  if (!frags.empty()) {
    BloomSketchView sketch = FragmentSketch(frags);
    FoldRowIntoSketch(&sketch, attrs);
    ++num_rows_;
    return Status::OK();
  }

  // Collapse duplicate (κ, α) rows among vector entries.
  auto slots = SlotsWithFp(pair, fp);
  for (const auto& [b, s] : slots) {
    if (codec_.EqualsStored(*table_, b, s, vec_base_, attrs)) {
      return Status::OK();
    }
  }

  if (static_cast<int>(slots.size()) >= config_.max_dupes) {
    // (d+1)-th distinct duplicate: convert the pair's d vectors to a Bloom
    // filter and fold this row in (§6.1).
    ConvertToBloom(pair, fp, attrs);
    ++num_rows_;
    return Status::OK();
  }

  // Converted fragments are ordinary kick victims: their whole payload
  // (mode + seq + Bloom fragment) travels with the slot, and displacement
  // keeps them inside their pair, so the packed Bloom stays reconstructible
  // via sequence numbers.
  bool placed = PlaceWithKicks(pair, fp, [&](uint64_t b, int s) {
    table_->ClearPayload(b, s);
    codec_.Store(table_.get(), b, s, vec_base_, attrs);
  });
  if (!placed) {
    return Status::CapacityError("mixed CCF: cuckoo kick budget exhausted");
  }
  ++num_rows_;
  return Status::OK();
}

uint64_t MixedCcf::PackRowPayload(std::span<const uint64_t> attrs) const {
  return table_->slot_bits() <= 64
             ? codec_.Pack(attrs) << static_cast<unsigned>(vec_base_)
             : 0;
}

bool MixedCcf::TryInsertNoKick(const BucketPair& pair, uint32_t fp,
                               std::span<const uint64_t> attrs,
                               uint64_t payload) {
  // One read-only pass over the pair decides the row: converted fragments
  // present, exact duplicate, and the fp copy count all come from a single
  // scan. An fp either has ALL its copies converted or none (ConvertToBloom
  // converts the full set and folding never adds vector entries
  // afterwards), so a duplicate match before a converted slot is seen
  // cannot happen for the same fp.
  if (table_->slot_bits() > 64) {
    // Oversized geometry: per-attribute scan and store (cold fallback).
    bool any_converted = false;
    auto [count, dup] = ScanPairWithFp(pair, fp, [&](uint64_t b, int s) {
      if (IsConverted(b, s)) {
        any_converted = true;
        return false;
      }
      return codec_.EqualsStored(*table_, b, s, vec_base_, attrs);
    });
    if (any_converted) return false;  // fold into the packed sketch: wave 2
    if (dup) return true;             // collapsed
    if (count >= config_.max_dupes) return false;  // conversion: wave 2
    auto [b, s] = FreeSlotInPair(pair);
    if (s < 0) return false;  // displacement needed: wave 2
    table_->Put(b, s, fp);
    table_->ClearPayload(b, s);
    codec_.Store(table_.get(), b, s, vec_base_, attrs);
    ++num_rows_;
    return true;
  }
  // Packed fast path (see ChainedCcf::TryInsertNoKick). A vector entry's
  // whole payload is (vector << vec_base_), precomputed as `payload`: mode
  // bit 0 and sequence bits 0. A converted fragment has mode bit 1, and
  // vec_base_ >= 1 keeps the packed word's bit 0 clear, so one
  // payload-word equality does the duplicate compare and cannot confuse
  // the two entry kinds.
  (void)attrs;
  const int payload_bits = table_->payload_bits();
  const uint64_t packed_payload = payload;
  bool any_converted = false;
  int count = 0;
  uint64_t free_bucket = 0;
  int free_slot = -1;
  auto scan = [&](uint64_t b) {  // returns true on a duplicate hit
    uint64_t occ = table_->OccupiedMask(b);
    uint64_t m = table_->MatchMask(b, fp) & occ;
    while (m != 0) {
      int s = std::countr_zero(m);
      m &= m - 1;
      ++count;
      uint64_t payload = table_->GetPayloadField(b, s, 0, payload_bits);
      if ((payload & 1) != 0) {
        any_converted = true;
        continue;
      }
      if (payload == packed_payload) return true;
    }
    if (free_slot < 0) {
      int fs = std::countr_one(occ);
      if (fs < table_->slots_per_bucket()) {
        free_bucket = b;
        free_slot = fs;
      }
    }
    return false;
  };
  bool dup = scan(pair.primary);
  if (!dup && !pair.degenerate()) dup = scan(pair.alt);
  if (any_converted) return false;  // fold into the packed sketch: wave 2
  if (dup) return true;             // collapsed
  if (count >= config_.max_dupes) return false;  // conversion: wave 2
  if (free_slot < 0) return false;  // displacement needed: wave 2
  table_->PutSlot(free_bucket, free_slot, fp, packed_payload);
  ++num_rows_;
  return true;
}

bool MixedCcf::EraseRowAddressed(const BucketPair& pair, uint32_t fp,
                                 uint64_t payload) {
  // Deletion only reclaims UNCONVERTED vector entries: `payload` is the
  // packed vector shifted to vec_base_ with mode bit 0, while converted
  // fragments carry mode bit 1, so the full payload-word equality can never
  // hit a fragment. Rows folded into a packed Bloom sketch are
  // irrecoverable in place (OR-folded bits are shared) and stay as residue
  // until compaction rebuilds the pair from surviving rows.
  const int payload_bits = table_->payload_bits();
  uint64_t hit_b = 0;
  int hit_s = -1;
  ScanPairWithFp(pair, fp, [&](uint64_t b, int s) {
    if (table_->GetPayloadField(b, s, 0, payload_bits) == payload) {
      hit_b = b;
      hit_s = s;
      return true;
    }
    return false;
  });
  if (hit_s < 0) return false;
  table_->Erase(hit_b, hit_s);
  return true;
}

bool MixedCcf::ContainsKey(uint64_t key) const {
  uint64_t bucket;
  uint32_t fp;
  KeyAddress(key, &bucket, &fp);
  return CountFpInPair(PairOf(bucket, fp), fp) > 0;
}

bool MixedCcf::Contains(uint64_t key, const Predicate& pred) const {
  uint64_t bucket;
  uint32_t fp;
  KeyAddress(key, &bucket, &fp);
  return ContainsAddressed(bucket, fp, pred);
}

bool MixedCcf::ContainsAddressed(uint64_t bucket, uint32_t fp,
                                 const Predicate& pred) const {
  return ResolveAddressed(PairOf(bucket, fp), fp, pred,
                          [&](uint64_t b, int s) {
                            return VectorEntryMatches(*table_, b, s, vec_base_,
                                                      codec_, pred);
                          });
}

bool MixedCcf::ContainsAddressedExcluding(
    uint64_t bucket, uint32_t fp, const Predicate& pred,
    std::span<const uint64_t> excluded) const {
  if (excluded.empty()) return ContainsAddressed(bucket, fp, pred);
  CCF_DCHECK(table_->slot_bits() <= 64);
  // Vector entries honour exclusions via the payload-word compare (staged
  // erases always target vector entries — their excluded words have mode
  // bit 0, so converted fragments are never suppressed). The converted
  // sketch fallback ignores exclusions: rows folded into the packed Bloom
  // cannot be unfolded, a one-sided (false-positive direction) residue that
  // compaction clears.
  return ResolveAddressed(PairOf(bucket, fp), fp, pred,
                          [&](uint64_t b, int s) {
                            return !PayloadExcluded(EntryPayloadWord(b, s),
                                                    excluded) &&
                                   VectorEntryMatches(*table_, b, s, vec_base_,
                                                      codec_, pred);
                          });
}

void MixedCcf::LookupBatchBroadcast(std::span<const uint64_t> keys,
                                    const Predicate& pred,
                                    std::span<bool> out) const {
  // One predicate for the whole batch: hash its values once, compare raw
  // fingerprints per entry (converted keys still take the sketch path).
  CompiledVectorPredicate compiled =
      CompiledVectorPredicate::Compile(codec_, pred);
  BatchResolve(keys, out, [&](size_t, const BucketPair& pair, uint32_t fp) {
    return ResolveAddressed(pair, fp, pred, [&](uint64_t b, int s) {
      return VectorEntryMatchesCompiled(*table_, b, s, vec_base_, codec_,
                                        compiled);
    });
  });
}

Result<std::unique_ptr<KeyFilter>> MixedCcf::PredicateQuery(
    const Predicate& pred) const {
  BitVector marks(table_->num_slots());
  // Converted groups match or fail as a unit; evaluate each group once.
  std::unordered_set<uint64_t> evaluated_groups;
  for (uint64_t b = 0; b < table_->num_buckets(); ++b) {
    for (int s = 0; s < table_->slots_per_bucket(); ++s) {
      if (!table_->occupied(b, s)) continue;
      uint64_t idx = b * static_cast<uint64_t>(table_->slots_per_bucket()) +
                     static_cast<uint64_t>(s);
      if (!IsConverted(b, s)) {
        if (!VectorEntryMatches(*table_, b, s, vec_base_, codec_, pred)) {
          marks.SetBit(idx, true);
        }
        continue;
      }
      uint32_t fp = table_->fingerprint(b, s);
      BucketPair pair = PairOf(b, fp);
      uint64_t group = pair.Canonical(table_->num_buckets()) *
                           (uint64_t{1} << table_->fingerprint_bits()) +
                       fp;
      if (!evaluated_groups.insert(group).second) continue;
      auto frags = CanonicalFragments(pair, fp);
      bool match = SketchMatches(FragmentSketch(frags), pred);
      if (!match) {
        for (const auto& [fb, fs] : frags) {
          marks.SetBit(fb * static_cast<uint64_t>(table_->slots_per_bucket()) +
                           static_cast<uint64_t>(fs),
                       true);
        }
      }
    }
  }
  return std::unique_ptr<KeyFilter>(new MarkedKeyFilter(
      table_, std::move(marks), hasher_, config_.max_dupes, /*chain_cap=*/1,
      /*chain_on_full_pair=*/false));
}

void MixedCcf::SaveExtras(ByteWriter* writer) const {
  writer->WriteU64(num_conversions_);
}

Status MixedCcf::LoadExtras(ByteReader* reader) {
  CCF_ASSIGN_OR_RETURN(num_conversions_, reader->ReadU64());
  return Status::OK();
}

}  // namespace ccf
