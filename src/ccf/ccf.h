// Public interface of the Conditional Cuckoo Filter (the paper's primary
// contribution, §5-§6): approximate membership of (key, predicate) queries
// with no false negatives, in four variants:
//
//   * kPlain   — cuckoo filter + attribute fingerprint vectors, duplicates
//                limited to one bucket pair (the failure-prone baseline),
//   * kChained — fingerprint vectors + the chaining technique (§6.2),
//   * kBloom   — per-entry Bloom attribute sketches (§5.2),
//   * kMixed   — fingerprint vectors with Bloom conversion at d duplicates
//                (§6.1).
#ifndef CCF_CCF_CCF_H_
#define CCF_CCF_CCF_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cuckoo/cuckoo_filter.h"
#include "predicate/predicate.h"
#include "util/result.h"
#include "util/serde.h"

namespace ccf {

/// CCF variant selector (paper's naming: Plain / Chained / Bloom / Mixed).
enum class CcfVariant { kPlain, kChained, kBloom, kMixed };

std::string_view CcfVariantName(CcfVariant variant);

/// Tuning parameters of a CCF (§8's parameter set).
struct CcfConfig {
  /// m — number of buckets (rounded up to a power of two).
  uint64_t num_buckets = 1024;
  /// b — entries per bucket; §8's rule of thumb is b ≈ 2d.
  int slots_per_bucket = 6;
  /// |κ| — key fingerprint bits (7, 8, or 12 in the evaluation).
  int key_fp_bits = 12;
  /// |α| — bits per attribute fingerprint (4 or 8 in the evaluation).
  int attr_fp_bits = 8;
  /// #α — number of attribute columns sketched.
  int num_attrs = 1;
  /// d — max duplicate key fingerprints per bucket pair (paper uses 3).
  int max_dupes = 3;
  /// Lmax — maximum chain length; 0 means unbounded (∞ in the paper's
  /// multiset experiments), internally capped by kHardChainCap.
  int max_chain = 0;
  /// Bloom attribute sketch bits per entry (Bloom variant only).
  int bloom_bits = 16;
  /// Fixed number of Bloom sketch hash functions (the paper found small
  /// fixed values, 2, uniformly better).
  int bloom_hashes = 2;
  /// §10.4's alternative: derive #hashes from eq. (2) assuming 2 attribute
  /// vectors per key (d+1 for Mixed). Uniformly worse per the paper; kept
  /// for reproduction.
  bool optimize_bloom_hashes = false;
  /// §9 small-value optimization: attribute values < 2^|α| stored exactly.
  bool small_value_opt = true;
  /// Hash salt (experiments randomize this per run).
  uint64_t salt = 0;
  /// MaxKicks for cuckoo displacement.
  int max_kicks = 500;
  /// Scalar Insert takes the historical per-attribute SlotsWithFp path when
  /// true (the default), pinning pre-existing builds bit-for-bit
  /// (`ccf_joblight --build scalar` relies on it). false enables the
  /// packed-compare scalar fast path: displacement-free rows dedupe via one
  /// word compare and land via one PutSlot field store (the batched wave-1
  /// placement, applied row-at-a-time). Build-time knob; not serialized.
  bool reproducible_scalar = true;
};

/// Hard cap on chain walks when max_chain is 0 ("unbounded").
inline constexpr int kHardChainCap = 64;

/// Shared shape validation for LookupBatch implementations: out must match
/// keys, preds must be broadcast (1) or per-key (keys.size()).
Status ValidateLookupBatchShape(size_t num_keys, size_t num_preds,
                                size_t num_out);

/// \brief Result of a predicate-only query (Algorithm 2): a key-only filter
/// for S_P = {k : (k, a) ∈ D, P(a) = true}, with no false negatives.
class KeyFilter {
 public:
  virtual ~KeyFilter() = default;
  virtual bool Contains(uint64_t key) const = 0;
  virtual uint64_t SizeInBits() const = 0;

  /// Batched Contains: out[i] = Contains(keys[i]). The default is the
  /// scalar loop; implementations override with prefetched two-pass
  /// resolution. Requires out.size() == keys.size().
  virtual void ContainsBatch(std::span<const uint64_t> keys,
                             std::span<bool> out) const;
};

/// \brief Approximate membership filter for (key, predicate) queries.
///
/// Guarantee: if some inserted row (k, a) has P(a) = true, then
/// Contains(k, P) returns true (Theorem 3). All query methods are const and
/// safe for concurrent readers; Insert is single-writer.
class ConditionalCuckooFilter {
 public:
  virtual ~ConditionalCuckooFilter() = default;

  /// Creates a CCF of the given variant. Fails on invalid geometry.
  static Result<std::unique_ptr<ConditionalCuckooFilter>> Make(
      CcfVariant variant, const CcfConfig& config);

  /// Inserts one row: a key and its attribute values (size must equal
  /// config().num_attrs). Duplicate (key, attribute-fingerprint) rows are
  /// collapsed. Returns CapacityError when the structure cannot absorb the
  /// row (the "failed insertion" event measured in Figure 4).
  virtual Status Insert(uint64_t key, std::span<const uint64_t> attrs) = 0;

  /// Bulk row insertion: row i is (keys[i], attrs[i*num_attrs ..
  /// (i+1)*num_attrs)) with attrs row-major holding keys.size() * num_attrs
  /// values. Semantically a loop of Insert over the rows — duplicate
  /// collapsing, no-false-negatives, and CapacityError (stop, resize,
  /// rebuild) carry over — but implementations may hash blocks up front,
  /// prefetch, and reorder row placement: entry/row counts and answers for
  /// inserted rows are unaffected, while exact slot assignment (hence
  /// absent-key false positives) may differ from the scalar loop. CcfBase
  /// overrides this with the two-wave prefetched write pipeline; the base
  /// implementation is the scalar loop.
  ///
  /// `hash_memo`, when non-null, caches the geometry-independent half of
  /// each row's hash pipeline — two words per row: the salt-keyed key hash
  /// and the packed payload word (attribute fingerprints / sketch bits).
  /// Pass an empty vector on the first build (it is filled during the
  /// address pass) and the SAME vector to a rebuild with any bucket count
  /// under the same salt — re-addressing then re-masks the cached hashes
  /// instead of re-hashing every key and attribute, which is what makes
  /// §4.1's doubling rebuilds cheap. Must be empty or hold exactly
  /// 2 * keys.size() entries.
  virtual Status InsertBatch(std::span<const uint64_t> keys,
                             std::span<const uint64_t> attrs,
                             std::vector<uint64_t>* hash_memo = nullptr);

  /// Copies the filter OBJECT while sharing its current immutable table
  /// snapshot, so cloning a multi-megabyte filter costs O(object), not
  /// O(table): the clone copy-on-writes (unshares) the table before its
  /// first mutation, leaving the source — and every reader bound to its
  /// snapshot — untouched. This is the building block of the wait-free
  /// write-batch commit path (ShardedCcf::CommitWrites inserts pending
  /// rows into a clone off the serving path and epoch-publishes the
  /// result). Supported by the four CcfBase variants; containers
  /// (ShardedCcf) return InvalidArgument.
  virtual Result<std::unique_ptr<ConditionalCuckooFilter>> Clone() const;

  /// Key-only membership (ordinary cuckoo-filter query, §7.1).
  virtual bool ContainsKey(uint64_t key) const = 0;

  /// Membership of key under an equality/in-list predicate (Algorithm 1 /
  /// Algorithm 5).
  virtual bool Contains(uint64_t key, const Predicate& pred) const = 0;

  /// Batched Contains: out[i] = Contains(keys[i], pred_i), bit-identical to
  /// the scalar loop. `preds` holds either one predicate applied to every
  /// key (the join-pushdown pattern: millions of keys, one predicate) or
  /// exactly keys.size() per-key predicates. The base implementation is the
  /// scalar loop; CcfBase overrides it with a two-pass hot path that hashes
  /// a block of keys up front and software-prefetches both candidate
  /// buckets per key before resolving. Safe for concurrent readers.
  virtual Status LookupBatch(std::span<const uint64_t> keys,
                             std::span<const Predicate> preds,
                             std::span<bool> out) const;

  /// Batched ContainsKey with the same prefetched two-pass structure.
  /// Requires out.size() == keys.size().
  virtual void ContainsKeyBatch(std::span<const uint64_t> keys,
                                std::span<bool> out) const;

  /// Convenience for Query(k, a): all attributes must match exactly.
  bool ContainsRow(uint64_t key, std::span<const uint64_t> attrs) const;

  /// Predicate-only query (Algorithm 2): derives a key filter for S_P.
  /// Supported by all variants in this implementation (the chained variant
  /// uses the §6.2 marking extension rather than erasure).
  virtual Result<std::unique_ptr<KeyFilter>> PredicateQuery(
      const Predicate& pred) const = 0;

  /// Physical sketch size in bits (slot storage + occupancy bitmap).
  virtual uint64_t SizeInBits() const = 0;
  virtual double LoadFactor() const = 0;
  /// Number of occupied entries (Z′ in §8).
  virtual uint64_t num_entries() const = 0;
  /// Number of rows accepted by Insert (collapsed duplicates count once).
  virtual uint64_t num_rows() const = 0;

  virtual const CcfConfig& config() const = 0;
  virtual CcfVariant variant() const = 0;
  std::string_view name() const { return CcfVariantName(variant()); }

  /// Serializes the filter to bytes (variant + config + table + counters).
  /// Sketches are precomputed artifacts in the paper's workflow; Save/Load
  /// round-trips preserve every query answer.
  virtual std::string Serialize() const = 0;

  /// Restores any variant serialized by Serialize().
  static Result<std::unique_ptr<ConditionalCuckooFilter>> Deserialize(
      std::string_view data);

  /// Zero-copy restore: like Deserialize(data), but the loaded table's bit
  /// arrays ALIAS `data` where alignment permits instead of copying —
  /// opening a large filter from an mmap'd blob costs page-table setup,
  /// not a memcpy. `data` must point into the region `mapping.keepalive`
  /// keeps alive (e.g. a MappedFile's view), and that region must stay
  /// READABLE for at least 8 bytes past the end of `data`: wide probe
  /// readers may overread an aliased word array by up to 7 bytes (see
  /// AliasMapping's tail-slack contract). MmapFileBytes' guard page
  /// provides this; heap-backed blobs need explicit tail slack. The
  /// filter retains the keepalive. Mutating an alias-loaded filter
  /// copy-on-writes the bit arrays first, so the backing buffer is never
  /// written through.
  static Result<std::unique_ptr<ConditionalCuckooFilter>> Deserialize(
      std::string_view data, const AliasMapping& mapping);
};

}  // namespace ccf

#endif  // CCF_CCF_CCF_H_
