// Bloom CCF (§5.2): a cuckoo filter whose entries each carry a small Bloom
// filter of the key's (attribute, value) pairs. Occupied entries match a
// regular cuckoo filter exactly (one entry per distinct fingerprint per
// pair), so the theoretical load-factor guarantees of cuckoo filters carry
// over — at the cost of losing co-occurrence information across rows.
#ifndef CCF_CCF_BLOOM_CCF_H_
#define CCF_CCF_BLOOM_CCF_H_

#include <memory>

#include "bloom/bloom_sketch.h"
#include "ccf/ccf_base.h"

namespace ccf {

/// \brief CCF with per-entry Bloom attribute sketches.
class BloomCcf : public CcfBase {
 public:
  static Result<std::unique_ptr<ConditionalCuckooFilter>> Make(
      const CcfConfig& config);

  Status Insert(uint64_t key, std::span<const uint64_t> attrs) override;
  bool ContainsKey(uint64_t key) const override;
  bool Contains(uint64_t key, const Predicate& pred) const override;
  bool ContainsAddressed(uint64_t bucket, uint32_t fp,
                         const Predicate& pred) const override;
  bool ContainsAddressedExcluding(
      uint64_t bucket, uint32_t fp, const Predicate& pred,
      std::span<const uint64_t> excluded) const override;

  /// Algorithm 2 verbatim: erase non-matching entries, return the remaining
  /// key fingerprints as a plain cuckoo filter.
  Result<std::unique_ptr<KeyFilter>> PredicateQuery(
      const Predicate& pred) const override;
  Result<std::unique_ptr<ConditionalCuckooFilter>> Clone() const override {
    return std::unique_ptr<ConditionalCuckooFilter>(new BloomCcf(*this));
  }
  CcfVariant variant() const override { return CcfVariant::kBloom; }

  /// Number of Bloom probes per item in the per-entry sketches.
  int sketch_hashes() const { return sketch_hashes_; }

 protected:
  void LookupBatchBroadcast(std::span<const uint64_t> keys,
                            const Predicate& pred,
                            std::span<bool> out) const override;
  uint64_t PackRowPayload(std::span<const uint64_t> attrs) const override;
  bool TryInsertNoKick(const BucketPair& pair, uint32_t fp,
                       std::span<const uint64_t> attrs,
                       uint64_t payload) override;
  Status InsertAddressed(const BucketPair& pair, uint32_t fp,
                         std::span<const uint64_t> attrs) override;
  bool EraseRowAddressed(const BucketPair& pair, uint32_t fp,
                         uint64_t payload) override;

 private:
  BloomCcf(CcfConfig config, BucketTable table);

  BloomSketchView EntrySketch(uint64_t bucket, int slot) const;
  bool EntryMatches(uint64_t bucket, int slot, const Predicate& pred) const;

  /// ORs the row's (attribute, value) bits into the entry's Bloom sketch.
  void FoldRow(uint64_t bucket, int slot, std::span<const uint64_t> attrs);

  int sketch_hashes_;
};

}  // namespace ccf

#endif  // CCF_CCF_BLOOM_CCF_H_
