#include "ccf/sizing.h"

#include <algorithm>
#include <cmath>

#include "util/math_util.h"

namespace ccf {

DuplicateProfile DuplicateProfile::FromCounts(std::span<const uint64_t> counts,
                                              int d, int chain_cap) {
  DuplicateProfile p;
  p.num_keys = counts.size();
  if (counts.empty()) return p;
  uint64_t cap_chain =
      static_cast<uint64_t>(d) *
      static_cast<uint64_t>(chain_cap > 0 ? chain_cap : kHardChainCap);
  double sum = 0, sum_capped = 0, sum_chain = 0;
  for (uint64_t a : counts) {
    sum += static_cast<double>(a);
    sum_capped += static_cast<double>(std::min<uint64_t>(
        a, static_cast<uint64_t>(d)));
    sum_chain += static_cast<double>(std::min<uint64_t>(a, cap_chain));
    p.max_dupes = std::max(p.max_dupes, a);
    p.num_rows += a;
  }
  double n = static_cast<double>(counts.size());
  p.mean_dupes = sum / n;
  p.mean_capped = sum_capped / n;
  p.mean_capped_chain = sum_chain / n;
  return p;
}

double PredictedEntries(CcfVariant variant, const DuplicateProfile& profile,
                        const CcfConfig& config) {
  double nk = static_cast<double>(profile.num_keys);
  switch (variant) {
    case CcfVariant::kBloom:
      return nk;  // same occupancy as a cuckoo filter
    case CcfVariant::kMixed: {
      // A key with A ≤ d duplicates uses A slots; a converted key pins
      // exactly d. E[min{A, d}] counts both cases.
      (void)config;
      return nk * profile.mean_capped;
    }
    case CcfVariant::kChained:
      return nk * profile.mean_capped_chain;
    case CcfVariant::kPlain:
      return static_cast<double>(profile.num_rows);
  }
  return nk;
}

double AttainableLoadFactor(CcfVariant variant, int slots_per_bucket) {
  if (variant == CcfVariant::kBloom) {
    // Occupancy matches a plain cuckoo filter (§5.2): ≈95% at b=4 per Fan
    // et al.; slightly higher with larger buckets.
    return slots_per_bucket >= 4 ? 0.95 : 0.85;
  }
  // Figure 4's plateaus for chained structures with duplicates.
  if (slots_per_bucket <= 4) return 0.75;
  if (slots_per_bucket <= 6) return 0.87;
  return 0.90;
}

Result<CcfConfig> ChooseGeometry(CcfVariant variant, CcfConfig config,
                                 const DuplicateProfile& profile) {
  if (config.slots_per_bucket <= 0) {
    config.slots_per_bucket = 2 * config.max_dupes;  // §8's b ≈ 2d rule
  }
  if (config.max_dupes > config.slots_per_bucket) {
    return Status::Invalid("max_dupes exceeds slots_per_bucket");
  }
  double entries = PredictedEntries(variant, profile, config);
  double beta = AttainableLoadFactor(variant, config.slots_per_bucket);
  double slots_needed = entries / beta;
  uint64_t buckets = NextPowerOfTwo(static_cast<uint64_t>(std::ceil(
      slots_needed / static_cast<double>(config.slots_per_bucket))));
  config.num_buckets = std::max<uint64_t>(buckets, 2);
  return config;
}

double BitsPerRow(uint64_t size_in_bits, uint64_t num_rows) {
  if (num_rows == 0) return 0.0;
  return static_cast<double>(size_in_bits) / static_cast<double>(num_rows);
}

}  // namespace ccf
