// Range-predicate CCF via dyadic decomposition — §9.1's second method. Each
// row is inserted η = max_level + 1 times, once per dyadic interval
// containing its range-column value; a range query probes the O(log range)
// covering intervals. Compared to binning: no fixed-resolution error, at
// the cost of η× insertions and larger sketches.
#ifndef CCF_CCF_RANGE_CCF_H_
#define CCF_CCF_RANGE_CCF_H_

#include <memory>

#include "ccf/ccf.h"
#include "predicate/dyadic.h"

namespace ccf {

/// \brief CCF wrapper supporting range predicates on one designated column.
///
/// The wrapped CCF sees the range column's value replaced by dyadic interval
/// labels; other columns pass through. Equality on the range column is a
/// level-0 label probe, so all query kinds remain available.
class RangeCcf {
 public:
  /// \param range_attr_index which attribute column carries range queries
  /// \param max_level dyadic levels (domain up to 2^max_level values)
  static Result<RangeCcf> Make(CcfVariant variant, const CcfConfig& config,
                               int range_attr_index, int max_level);

  /// Inserts one row (η inner insertions, one per dyadic level).
  Status Insert(uint64_t key, std::span<const uint64_t> attrs);

  /// Key + conjunction of: equality terms on other columns (given via
  /// `other`, may be empty) and range [lo, hi] on the range column.
  bool ContainsInRange(uint64_t key, uint64_t lo, uint64_t hi,
                       const Predicate& other = Predicate()) const;

  /// Plain equality query (all columns; range column at level 0).
  bool ContainsRow(uint64_t key, std::span<const uint64_t> attrs) const;

  bool ContainsKey(uint64_t key) const { return inner_->ContainsKey(key); }

  uint64_t SizeInBits() const { return inner_->SizeInBits(); }
  const ConditionalCuckooFilter& inner() const { return *inner_; }
  int max_level() const { return max_level_; }

 private:
  RangeCcf(std::unique_ptr<ConditionalCuckooFilter> inner,
           int range_attr_index, int max_level)
      : inner_(std::move(inner)),
        range_attr_(range_attr_index),
        max_level_(max_level) {}

  std::unique_ptr<ConditionalCuckooFilter> inner_;
  int range_attr_;
  int max_level_;
};

}  // namespace ccf

#endif  // CCF_CCF_RANGE_CCF_H_
