// Range-predicate CCF via dyadic decomposition — §9.1's second method. Each
// row is inserted η = max_level + 1 times, once per dyadic interval
// containing its range-column value; a range query probes the O(log range)
// covering intervals. Compared to binning: no fixed-resolution error, at
// the cost of η× insertions and larger sketches.
//
// RangeCcf is a full ConditionalCuckooFilter, so everything built for
// equality filters applies to range filters unchanged:
//
//   * Batched range lookups: CompileRange precomputes the dyadic cover
//     ONCE per batch (the same shape as the precompiled Bloom probes of
//     the equality fast path) and ContainsInRangeBatch feeds the compiled
//     predicate to the inner filter's broadcast LookupBatch — the
//     two-pass radix-clustered, prefetched batch pipeline — bit-identical
//     to a scalar ContainsInRange loop.
//   * Sharding + live writes: MakeSharded wraps a ShardedCcf, so range
//     filters inherit epoch-protected snapshot reads, NUMA routing, and
//     the write-buffer overlay. BufferWrite stages a row's η dyadic
//     labels as ONE atomically-published group — no reader can observe a
//     partial level set, so staged rows never produce range-query false
//     negatives.
//   * Serialization: Serialize/Deserialize (alias-mode included) wrap the
//     inner blob with an "RCF1" header plus the retained row log, so the
//     FilterCatalog tiers range filters like any other entry.
//
// All-or-nothing insertion: a row either has ALL of its η labels in the
// filter or none of them. A mid-row CapacityError rolls back by rebuilding
// the inner filter from the retained row log (failure-path-only cost), so
// a failed insert can never leave a level-gapped row behind — the gap
// would turn into range-query false negatives, the one thing a CCF must
// never produce (Theorem 3).
#ifndef CCF_CCF_RANGE_CCF_H_
#define CCF_CCF_RANGE_CCF_H_

#include <memory>
#include <mutex>
#include <vector>

#include "ccf/ccf.h"
#include "ccf/sharded_ccf.h"
#include "predicate/dyadic.h"

namespace ccf {

/// \brief A range predicate compiled once per batch: the clamped bounds,
/// the dyadic cover size, and the ready-to-probe inner predicate (cover
/// labels as an in-list on the range column, conjoined with any other
/// terms). Build with RangeCcf::CompileRange; valid for the filter that
/// compiled it (labels depend on its range column and max_level).
struct CompiledRangePredicate {
  /// The effective (clamped) query bounds; hi is capped into the dyadic
  /// domain so open-ended queries (hi = UINT64_MAX) stay answerable.
  uint64_t lo = 0;
  uint64_t hi = 0;
  /// Number of covering intervals (O(log range) diagnostics). 0 for an
  /// empty range (pred then matches nothing) AND for a range too wide for
  /// the filter's max_level (cover past kMaxDyadicCoverIntervals; pred
  /// then degrades to the `other` terms alone — a conservative superset,
  /// so no false negatives, just no range pruning).
  size_t cover_size = 0;
  /// The translated inner-schema predicate.
  Predicate pred;
};

/// \brief CCF supporting range predicates on one designated column.
///
/// The wrapped CCF sees the range column's value replaced by dyadic
/// interval labels; other columns pass through. A level-0 label equals the
/// raw value (level 0 in the top bits is zero), so equality queries on the
/// range column remain available through the ordinary
/// ConditionalCuckooFilter interface — Contains/LookupBatch accept
/// raw-schema predicates and drop out-of-domain range-column values from
/// in-lists (such rows can never have been inserted).
class RangeCcf final : public ConditionalCuckooFilter {
 public:
  /// Single-table inner filter.
  /// \param range_attr_index which attribute column carries range queries
  /// \param max_level dyadic levels (η = max_level + 1 insertions per row)
  static Result<std::unique_ptr<RangeCcf>> Make(CcfVariant variant,
                                                const CcfConfig& config,
                                                int range_attr_index,
                                                int max_level);

  /// Sharded inner filter: epoch-protected reads, live writes through the
  /// staged overlay, NUMA routing — the serving-tier configuration.
  /// `config.num_buckets` is the total budget (ShardedCcf::Make semantics).
  static Result<std::unique_ptr<RangeCcf>> MakeSharded(
      CcfVariant variant, const CcfConfig& config, int range_attr_index,
      int max_level, const ShardedCcfOptions& options);

  // --- Range API -----------------------------------------------------------

  /// Compiles [lo, hi] (plus optional equality terms on other columns)
  /// into the inner-schema predicate, computing the dyadic cover ONCE so a
  /// batch probe does no per-key cover work. `hi` beyond the dyadic domain
  /// clamps to kDyadicDomainSize - 1 (no inserted value can exceed it);
  /// an empty or fully-out-of-domain range compiles to a matches-nothing
  /// predicate. InvalidArgument only if `other` carries out-of-schema
  /// terms.
  Result<CompiledRangePredicate> CompileRange(
      uint64_t lo, uint64_t hi, const Predicate& other = Predicate()) const;

  /// Key + conjunction of: equality terms on other columns (given via
  /// `other`, may be empty) and range [lo, hi] on the range column.
  /// No false negatives over inserted (and staged) rows.
  bool ContainsInRange(uint64_t key, uint64_t lo, uint64_t hi,
                       const Predicate& other = Predicate()) const;

  /// Batched range lookup: out[i] = ContainsInRange(keys[i], pred.lo,
  /// pred.hi, <pred's other terms>), bit-identical to the scalar loop.
  /// The compiled predicate broadcasts to every key, riding the inner
  /// filter's prefetched two-pass batch pipeline. Safe for concurrent
  /// readers (sharded inner: staged rows visible, epoch-protected).
  Status ContainsInRangeBatch(std::span<const uint64_t> keys,
                              const CompiledRangePredicate& pred,
                              std::span<bool> out) const;

  // --- ConditionalCuckooFilter interface -----------------------------------

  /// Inserts one row all-or-nothing: η inner insertions (one per dyadic
  /// level); a mid-row CapacityError rolls the already-inserted labels
  /// back by rebuilding from the retained row log, so the filter never
  /// holds a partial level set. Internal if the rollback rebuild itself
  /// fails (the error message says whether partial state remains).
  /// InvalidArgument when the range-column value is >= kDyadicDomainSize.
  Status Insert(uint64_t key, std::span<const uint64_t> attrs) override;

  /// Bulk insertion with the same all-or-nothing contract at BATCH
  /// granularity: on any failure the whole batch is rolled back (rebuild
  /// from the log, which excludes it). `hash_memo` is validated for shape
  /// but not consumed — the inner build hashes the η-expanded rows, whose
  /// memo does not line up with the caller's per-row view.
  Status InsertBatch(std::span<const uint64_t> keys,
                     std::span<const uint64_t> attrs,
                     std::vector<uint64_t>* hash_memo = nullptr) override;

  /// Clones object + row log; the inner table is shared copy-on-write
  /// (plain inner only — a sharded inner returns InvalidArgument, like
  /// ShardedCcf::Clone). NOTE: the log copy makes this O(rows), not
  /// O(object) — fine for the catalog's clone-publish write path, not for
  /// per-row staging.
  Result<std::unique_ptr<ConditionalCuckooFilter>> Clone() const override;

  bool ContainsKey(uint64_t key) const override {
    return inner_->ContainsKey(key);
  }

  /// Equality/in-list query on the RAW schema: range-column values are
  /// translated to their level-0 labels (an identity mapping in-domain;
  /// out-of-domain values are dropped — they cannot have been inserted).
  bool Contains(uint64_t key, const Predicate& pred) const override;

  /// Batched Contains with the same raw-schema translation, resolved
  /// through the inner batch pipeline. For RANGE predicates use
  /// CompileRange + ContainsInRangeBatch — cover labels must not be
  /// re-translated.
  Status LookupBatch(std::span<const uint64_t> keys,
                     std::span<const Predicate> preds,
                     std::span<bool> out) const override;

  void ContainsKeyBatch(std::span<const uint64_t> keys,
                        std::span<bool> out) const override {
    inner_->ContainsKeyBatch(keys, out);
  }

  /// Predicate-only query on the raw schema (translated like Contains).
  Result<std::unique_ptr<KeyFilter>> PredicateQuery(
      const Predicate& pred) const override;

  uint64_t SizeInBits() const override { return inner_->SizeInBits(); }
  double LoadFactor() const override { return inner_->LoadFactor(); }
  /// Inner entries — η× the row count, the size tax of §9.1's method.
  uint64_t num_entries() const override { return inner_->num_entries(); }
  /// ROWS accepted (original rows, not η-expanded entries).
  uint64_t num_rows() const override;

  const CcfConfig& config() const override { return inner_->config(); }
  CcfVariant variant() const override { return inner_->variant(); }

  // --- Live writes (sharded inner only) ------------------------------------

  /// Stages one row's η dyadic labels into the sharded inner's write
  /// buffer as ONE atomically-published group: all labels route to the
  /// same shard (routing hashes the key), and the group becomes visible
  /// with a single release store — a concurrent range reader sees the
  /// whole level set or none of it, never a false-negative-producing gap.
  /// Invalid on a non-sharded inner.
  Status BufferWrite(uint64_t key, std::span<const uint64_t> attrs);

  /// Bulk BufferWrite (row-major attrs), one atomic group per row.
  Status BufferWriteBatch(std::span<const uint64_t> keys,
                          std::span<const uint64_t> attrs);

  /// Publishes staged rows into the inner tables (sharded inner only).
  Status CommitWrites(int num_threads = 0);

  /// Staged-but-uncommitted inner records (η per staged row); 0 for a
  /// non-sharded inner.
  uint64_t pending_writes() const;

  /// Blocks until scheduled background maintenance (watermark resizes,
  /// autocommits) finishes; no-op for a non-sharded inner.
  void DrainMaintenance();

  /// The sharded inner, or null when built with Make (single-table). The
  /// FilterCatalog uses this to flush staged rows before demotion.
  ShardedCcf* sharded_inner() { return sharded_; }
  const ShardedCcf* sharded_inner() const { return sharded_; }

  // --- Serialization -------------------------------------------------------

  /// Serialized-blob magic ("RCF1");
  /// ConditionalCuckooFilter::Deserialize dispatches here.
  static constexpr uint32_t kMagic = 0x52434631;

  /// Header (range column, max_level, row count) + retained row log +
  /// 8-aligned inner blob. The log rides along so a deserialized filter
  /// keeps the all-or-nothing rollback and stays catalog-mutable. A
  /// sharded inner serializes COMMITTED state only — CommitWrites first
  /// if staged rows must be captured (the catalog's demotion path does).
  std::string Serialize() const override;

  /// With `alias` non-null the INNER tables alias the blob zero-copy; the
  /// (η-times-smaller) row log is copied out either way.
  static Result<std::unique_ptr<ConditionalCuckooFilter>> Deserialize(
      std::string_view data, const AliasMapping* alias = nullptr);

  const ConditionalCuckooFilter& inner() const { return *inner_; }
  int range_attr() const { return range_attr_; }
  int max_level() const { return max_level_; }

 private:
  RangeCcf(std::unique_ptr<ConditionalCuckooFilter> inner,
           int range_attr_index, int max_level);

  /// Validates shape and expands one raw row into its η label rows
  /// (appended to keys/attrs, row-major).
  Status ExpandRow(uint64_t key, std::span<const uint64_t> attrs,
                   std::vector<uint64_t>* keys,
                   std::vector<uint64_t>* out_attrs) const;

  /// Raw-schema predicate → inner label schema (see Contains).
  Predicate TranslatePredicate(const Predicate& pred) const;

  /// Rollback: rebuilds a fresh inner (same construction parameters) from
  /// the η-expanded row log and swaps it in, restoring the exact pre-
  /// failure row set.
  Status RebuildFromLog();

  /// Appends an accepted row to the retained log.
  void LogRow(uint64_t key, std::span<const uint64_t> attrs);

  std::unique_ptr<ConditionalCuckooFilter> inner_;
  /// Downcast cache: inner_ when sharded, else null.
  ShardedCcf* sharded_ = nullptr;
  int range_attr_;
  int max_level_;

  /// Construction parameters retained for the rollback rebuild.
  CcfVariant make_variant_;
  CcfConfig make_config_;
  ShardedCcfOptions sharded_options_;

  /// Guards the row log and num_rows_: BufferWrite keeps ShardedCcf's
  /// concurrent-stager contract, so concurrent log appends must not race.
  /// Query paths never take it.
  mutable std::mutex log_mu_;
  uint64_t num_rows_ = 0;
  /// Retained row log of accepted RAW rows (keys + row-major attrs):
  /// the rollback source and the serialized row record.
  std::vector<uint64_t> log_keys_;
  std::vector<uint64_t> log_attrs_;
};

}  // namespace ccf

#endif  // CCF_CCF_RANGE_CCF_H_
