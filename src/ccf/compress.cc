#include "ccf/compress.h"

#include <algorithm>
#include <queue>

namespace ccf {

std::unordered_map<uint32_t, uint32_t> CompressFingerprintSpace(
    const std::vector<uint32_t>& fingerprints, int target_bits) {
  std::unordered_map<uint32_t, uint64_t> freq;
  for (uint32_t fp : fingerprints) ++freq[fp];

  std::vector<std::pair<uint64_t, uint32_t>> by_freq;  // (count, wide fp)
  by_freq.reserve(freq.size());
  for (const auto& [fp, n] : freq) by_freq.emplace_back(n, fp);
  std::sort(by_freq.begin(), by_freq.end(), [](const auto& a, const auto& b) {
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  });

  uint32_t num_codes = uint32_t{1} << target_bits;
  // Min-heap of (accumulated load, code): each wide fp goes to the least
  // loaded code, so frequent values get exclusive codes while the tail is
  // spread evenly.
  using Load = std::pair<uint64_t, uint32_t>;
  std::priority_queue<Load, std::vector<Load>, std::greater<>> codes;
  for (uint32_t c = 0; c < num_codes; ++c) codes.emplace(0, c);

  std::unordered_map<uint32_t, uint32_t> mapping;
  mapping.reserve(freq.size());
  for (const auto& [n, fp] : by_freq) {
    auto [load, code] = codes.top();
    codes.pop();
    mapping[fp] = code;
    codes.emplace(load + n, code);
  }
  return mapping;
}

double AddedCollisionProbability(
    const std::vector<uint32_t>& fingerprints,
    const std::unordered_map<uint32_t, uint32_t>& mapping) {
  if (fingerprints.empty()) return 0.0;
  std::unordered_map<uint32_t, uint64_t> wide_freq;
  std::unordered_map<uint32_t, uint64_t> narrow_freq;
  for (uint32_t fp : fingerprints) {
    ++wide_freq[fp];
    ++narrow_freq[mapping.at(fp)];
  }
  double total = static_cast<double>(fingerprints.size());
  double p_wide = 0.0, p_narrow = 0.0;
  for (const auto& [fp, n] : wide_freq) {
    double p = static_cast<double>(n) / total;
    p_wide += p * p;
  }
  for (const auto& [code, n] : narrow_freq) {
    double p = static_cast<double>(n) / total;
    p_narrow += p * p;
  }
  return p_narrow - p_wide;
}

}  // namespace ccf
