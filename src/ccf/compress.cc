#include "ccf/compress.h"

#include <algorithm>
#include <cstring>
#include <queue>

namespace ccf {

namespace {

void AppendVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool ReadVarint(std::string_view data, size_t* pos, uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < data.size() && shift < 64) {
    uint8_t b = static_cast<uint8_t>(data[*pos]);
    ++*pos;
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace

std::unordered_map<uint32_t, uint32_t> CompressFingerprintSpace(
    const std::vector<uint32_t>& fingerprints, int target_bits) {
  std::unordered_map<uint32_t, uint64_t> freq;
  for (uint32_t fp : fingerprints) ++freq[fp];

  std::vector<std::pair<uint64_t, uint32_t>> by_freq;  // (count, wide fp)
  by_freq.reserve(freq.size());
  for (const auto& [fp, n] : freq) by_freq.emplace_back(n, fp);
  std::sort(by_freq.begin(), by_freq.end(), [](const auto& a, const auto& b) {
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  });

  uint32_t num_codes = uint32_t{1} << target_bits;
  // Min-heap of (accumulated load, code): each wide fp goes to the least
  // loaded code, so frequent values get exclusive codes while the tail is
  // spread evenly.
  using Load = std::pair<uint64_t, uint32_t>;
  std::priority_queue<Load, std::vector<Load>, std::greater<>> codes;
  for (uint32_t c = 0; c < num_codes; ++c) codes.emplace(0, c);

  std::unordered_map<uint32_t, uint32_t> mapping;
  mapping.reserve(freq.size());
  for (const auto& [n, fp] : by_freq) {
    auto [load, code] = codes.top();
    codes.pop();
    mapping[fp] = code;
    codes.emplace(load + n, code);
  }
  return mapping;
}

double AddedCollisionProbability(
    const std::vector<uint32_t>& fingerprints,
    const std::unordered_map<uint32_t, uint32_t>& mapping) {
  if (fingerprints.empty()) return 0.0;
  std::unordered_map<uint32_t, uint64_t> wide_freq;
  std::unordered_map<uint32_t, uint64_t> narrow_freq;
  for (uint32_t fp : fingerprints) {
    ++wide_freq[fp];
    ++narrow_freq[mapping.at(fp)];
  }
  double total = static_cast<double>(fingerprints.size());
  double p_wide = 0.0, p_narrow = 0.0;
  for (const auto& [fp, n] : wide_freq) {
    double p = static_cast<double>(n) / total;
    p_wide += p * p;
  }
  for (const auto& [code, n] : narrow_freq) {
    double p = static_cast<double>(n) / total;
    p_narrow += p * p;
  }
  return p_narrow - p_wide;
}

std::string CompressBlob(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() / 4 + 16);
  uint64_t raw_size = raw.size();
  char size_buf[8];
  std::memcpy(size_buf, &raw_size, 8);
  out.append(size_buf, 8);
  size_t pos = 0;
  while (pos < raw.size()) {
    size_t zero_start = pos;
    while (pos < raw.size() && raw[pos] == '\0') ++pos;
    size_t zero_len = pos - zero_start;
    size_t lit_start = pos;
    // A literal run ends at the next stretch of >= 8 zero bytes: shorter
    // zero gaps cost more as a (varint, varint) pair than as literals.
    size_t zeros_seen = 0;
    while (pos < raw.size()) {
      if (raw[pos] == '\0') {
        if (++zeros_seen == 8) {
          pos -= 7;
          break;
        }
      } else {
        zeros_seen = 0;
      }
      ++pos;
    }
    size_t lit_len = pos - lit_start;
    if (zero_len == 0 && lit_len == 0) break;
    AppendVarint(&out, zero_len);
    AppendVarint(&out, lit_len);
    out.append(raw.substr(lit_start, lit_len));
  }
  return out;
}

Result<std::string> DecompressBlob(std::string_view compressed) {
  if (compressed.size() < 8) {
    return Status::Invalid("compressed blob too short");
  }
  uint64_t raw_size;
  std::memcpy(&raw_size, compressed.data(), 8);
  if (raw_size > (uint64_t{1} << 40)) {
    return Status::Invalid("implausible compressed blob size");
  }
  std::string out;
  out.reserve(raw_size);
  size_t pos = 8;
  while (pos < compressed.size()) {
    uint64_t zero_len, lit_len;
    if (!ReadVarint(compressed, &pos, &zero_len) ||
        !ReadVarint(compressed, &pos, &lit_len)) {
      return Status::Invalid("truncated compressed blob header");
    }
    if (zero_len > raw_size - out.size() ||
        lit_len > raw_size - out.size() - zero_len ||
        lit_len > compressed.size() - pos) {
      return Status::Invalid("compressed blob run overflows declared size");
    }
    out.append(static_cast<size_t>(zero_len), '\0');
    out.append(compressed.substr(pos, static_cast<size_t>(lit_len)));
    pos += static_cast<size_t>(lit_len);
  }
  if (out.size() != raw_size) {
    return Status::Invalid("compressed blob shorter than declared size");
  }
  return out;
}

}  // namespace ccf
