#include "ccf/sharded_ccf.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>

#include "cuckoo/cuckoo_filter.h"
#include "util/batch_pipeline.h"
#include "util/math_util.h"

namespace ccf {

namespace {

constexpr uint32_t kShardedMagic = ShardedCcf::kMagic;

// Salt stream for shard routing; must stay uncorrelated with the in-shard
// addressing hash (Hash(key, 0) under config.salt), which the distinct salt
// guarantees.
constexpr uint64_t kShardSaltMix = 0x517cc1b727220a95ull;

/// \brief Key filter over per-shard derived filters, routed like the source.
class ShardedKeyFilter : public KeyFilter {
 public:
  ShardedKeyFilter(std::vector<std::unique_ptr<KeyFilter>> shards,
                   Hasher shard_hasher, uint64_t shard_mask)
      : shards_(std::move(shards)),
        shard_hasher_(shard_hasher),
        shard_mask_(shard_mask) {}

  bool Contains(uint64_t key) const override {
    return shards_[shard_hasher_.Hash(key, 0) & shard_mask_]->Contains(key);
  }

  void ContainsBatch(std::span<const uint64_t> keys,
                     std::span<bool> out) const override {
    // Gather per shard, delegate to each derived filter's own batched
    // (prefetched) path, scatter back — mirroring ShardedCcf::LookupBatch.
    CCF_DCHECK(out.size() == keys.size());
    std::vector<std::vector<uint64_t>> shard_keys(shards_.size());
    std::vector<std::vector<size_t>> shard_pos(shards_.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      size_t s = shard_hasher_.Hash(keys[i], 0) & shard_mask_;
      shard_keys[s].push_back(keys[i]);
      shard_pos[s].push_back(i);
    }
    std::unique_ptr<bool[]> shard_out;
    size_t cap = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      size_t n = shard_keys[s].size();
      if (n == 0) continue;
      if (n > cap) {
        shard_out.reset(new bool[n]);
        cap = n;
      }
      shards_[s]->ContainsBatch(shard_keys[s],
                                std::span<bool>(shard_out.get(), n));
      for (size_t j = 0; j < n; ++j) out[shard_pos[s][j]] = shard_out[j];
    }
  }

  uint64_t SizeInBits() const override {
    uint64_t bits = 0;
    for (const auto& s : shards_) bits += s->SizeInBits();
    return bits;
  }

 private:
  std::vector<std::unique_ptr<KeyFilter>> shards_;
  Hasher shard_hasher_;
  uint64_t shard_mask_;
};

// Shared two-pass skeleton over a pinned snapshot of the shard set,
// instantiating the library-wide batch pipeline: pass 1 computes each key's
// shard and (bucket, fp). All shards share one salt, so the raw key hash is
// computed once and re-masked with the TARGET shard's bucket mask (shards
// may have different bucket counts after per-shard resizes); the block is
// then radix-clustered by (shard, bucket) so same-shard probes of nearby
// buckets resolve back-to-back, both buckets of each pair are prefetched in
// the target shard, and resolve(index, shard, bucket, fp) runs with the
// lines (likely) cached.
template <typename Resolver>
void ShardedTwoPass(const ShardedCcf& self,
                    std::span<const CcfBase* const> bases,
                    std::span<const uint64_t> keys, Resolver&& resolve) {
  const Hasher& hasher = bases[0]->hasher();
  const int fp_bits = bases[0]->config().key_fp_bits;
  int max_bucket_bits = 0;
  for (const CcfBase* base : bases) {
    max_bucket_bits = std::max(
        max_bucket_bits,
        static_cast<int>(std::bit_width(base->table().bucket_mask())));
  }
  struct Addr {
    uint64_t cluster_key;
    uint64_t bucket;
    uint64_t alt;
    uint32_t shard;
    uint32_t fp;
  };
  BatchPipelineOptions options;
  options.cluster_bits =
      max_bucket_bits +
      std::bit_width(static_cast<uint64_t>(self.num_shards() - 1));
  RunBatchPipeline<Addr>(
      keys.size(), options,
      [&](size_t i) {
        Addr a;
        uint64_t key = keys[i];
        a.shard = static_cast<uint32_t>(self.ShardOf(key));
        uint64_t mask = bases[a.shard]->table().bucket_mask();
        cuckoo_addressing::IndexAndFingerprintFromHash(
            hasher.Hash(key, 0), mask, fp_bits, &a.bucket, &a.fp);
        a.alt = cuckoo_addressing::AltBucket(hasher, a.bucket, a.fp, mask);
        a.cluster_key =
            (static_cast<uint64_t>(a.shard) << max_bucket_bits) | a.bucket;
        return a;
      },
      [&](const Addr& a) {
        const BucketTable& table = bases[a.shard]->table();
        table.PrefetchBucket(a.bucket);
        if (a.alt != a.bucket) table.PrefetchBucket(a.alt);
      },
      [&](size_t i, const Addr& a) { resolve(i, a.shard, a.bucket, a.fp); });
}

// Deterministic per-shard error aggregation shared by InsertParallel and
// CommitWrites: the LOWEST failing shard's status wins, independent of
// thread scheduling.
Status AggregateShardStatus(std::span<const Status> shard_status) {
  for (size_t s = 0; s < shard_status.size(); ++s) {
    if (!shard_status[s].ok()) {
      return Status(shard_status[s].code(),
                    "shard " + std::to_string(s) + ": " +
                        shard_status[s].message());
    }
  }
  return Status::OK();
}

}  // namespace

ShardedCcf::ShardedCcf(
    std::vector<std::unique_ptr<ConditionalCuckooFilter>> shards,
    ShardedCcfOptions options, std::shared_ptr<const NumaTopology> topo,
    bool numa_active)
    : options_(options),
      topo_(std::move(topo)),
      numa_active_(numa_active),
      shard_config_(shards[0]->config()),
      variant_(shards[0]->variant()),
      shard_mask_(shards.size() - 1),
      shard_hasher_(shards[0]->config().salt ^ kShardSaltMix) {
  // One epoch domain per node keeps reader pin/unpin traffic node-local;
  // shards are assigned round-robin so every node serves an equal slice.
  const size_t num_domains =
      numa_active_ ? static_cast<size_t>(std::max(1, topo_->num_nodes)) : 1;
  domains_.reserve(num_domains);
  for (size_t n = 0; n < num_domains; ++n) {
    domains_.push_back(std::make_unique<EpochDomain>());
  }
  shards_.reserve(shards.size());
  for (size_t s = 0; s < shards.size(); ++s) {
    const int node = static_cast<int>(s % num_domains);
    shards_.push_back(std::make_unique<Shard>(
        domains_[static_cast<size_t>(node)].get(), std::move(shards[s]),
        node));
  }
  if (numa_active_ && options_.lookup_workers_per_node > 0 &&
      domains_.size() > 1) {
    StartWorkers();
  }
}

ShardedCcf::~ShardedCcf() {
  // Teardown order (see the header): workers first (they dereference task
  // state and shard snapshots), then every in-flight watermark resize —
  // those futures capture `this` and take shard locks, so they must be
  // reaped BEFORE any per-node domain (or shard) dies — and only then the
  // domains' deferred hooks, while the shards (whose spare slots the
  // write-buffer recycle hooks touch) are still alive. domains_ itself is
  // declared first, so destroyed last.
  StopWorkers();
  DrainMaintenance();
  for (auto& domain : domains_) domain->Synchronize();
}

Result<std::unique_ptr<ShardedCcf>> ShardedCcf::Make(
    CcfVariant variant, const CcfConfig& config,
    const ShardedCcfOptions& options) {
  if (options.num_shards < 1 || options.num_shards > 4096) {
    return Status::Invalid("num_shards must be in [1, 4096]");
  }
  if (options.max_auto_resizes < 0) {
    return Status::Invalid("max_auto_resizes must be >= 0");
  }
  if (options.resize_watermark < 0.0 || options.resize_watermark >= 1.0) {
    return Status::Invalid("resize_watermark must be in [0, 1)");
  }
  if (options.compact_watermark >= 1.0) {
    return Status::Invalid("compact_watermark must be < 1 (<= 0 disables)");
  }
  if (options.lookup_workers_per_node < 0 ||
      options.lookup_workers_per_node > 64) {
    return Status::Invalid("lookup_workers_per_node must be in [0, 64]");
  }
  ShardedCcfOptions opts = options;
  opts.num_shards = static_cast<int>(
      NextPowerOfTwo(static_cast<uint64_t>(options.num_shards)));

  // Resolve the NUMA policy against the process topology ONCE, here: kAuto
  // activates placement only when the machine actually has multiple nodes,
  // so single-node boxes (and CCF_NUMA=off runs) take exactly the
  // pre-NUMA construction path.
  std::shared_ptr<const NumaTopology> topo = SystemTopology();
  const bool numa_active =
      opts.numa_policy == NumaPolicy::kForce ||
      (opts.numa_policy == NumaPolicy::kAuto && topo->num_nodes > 1);
  const int num_domains = numa_active ? std::max(1, topo->num_nodes) : 1;

  CcfConfig shard_config = config;
  shard_config.num_buckets =
      std::max<uint64_t>(1, config.num_buckets /
                                static_cast<uint64_t>(opts.num_shards));
  std::vector<std::unique_ptr<ConditionalCuckooFilter>> shards;
  shards.reserve(static_cast<size_t>(opts.num_shards));
  for (int i = 0; i < opts.num_shards; ++i) {
    // Bind each shard's table pages to its (round-robin) node before first
    // touch — the same assignment the ShardedCcf constructor makes.
    ScopedNumaAllocNode alloc_scope(numa_active ? i % num_domains : -1);
    CCF_ASSIGN_OR_RETURN(std::unique_ptr<ConditionalCuckooFilter> shard,
                         ConditionalCuckooFilter::Make(variant, shard_config));
    shards.push_back(std::move(shard));
  }
  return std::unique_ptr<ShardedCcf>(new ShardedCcf(
      std::move(shards), opts, std::move(topo), numa_active));
}

Status ShardedCcf::Insert(uint64_t key, std::span<const uint64_t> attrs) {
  Shard& shard = *shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.writer_mu);
  ConditionalCuckooFilter* filter = shard.handle.writable();
  size_t old_rows = shard.keys.size();
  if (resizable_) {
    // Mirror the row into the shard's log BEFORE attempting placement, so a
    // capacity-triggered rebuild re-places it too. The memo words are
    // geometry-independent (salt-keyed hash + packed payload) and stay
    // valid across any number of doublings.
    if (static_cast<int>(attrs.size()) != config().num_attrs) {
      return Status::Invalid("attribute count does not match schema");
    }
    uint64_t row_memo[2];
    static_cast<CcfBase*>(filter)->MemoizeRow(key, attrs, &row_memo[0],
                                              &row_memo[1]);
    LogAppendRows(shard, std::span<const uint64_t>(&key, 1), attrs,
                  std::span<const uint64_t>(row_memo, 2));
  }
  Status st = filter->Insert(key, attrs);
  if (st.code() == StatusCode::kCapacityError) {
    st = GrowShardLocked(shard, std::move(st));
  }
  if (!st.ok() && resizable_) {
    // The row was ultimately rejected and (scalar Insert rolls back on
    // failure) is not in the table: drop it from the log too, or a later
    // resize would silently resurrect a row the caller was told failed.
    LogTruncate(shard, old_rows);
  }
  if (st.ok()) MaybeScheduleWatermarkResize(ShardOf(key), shard);
  return st;
}

// --- Write batching (the wait-free live-write path) --------------------------

ShardedCcf::WriteBuffer* ShardedCcf::PendingWithRoom(Shard& shard,
                                                     size_t rows_needed) {
  WriteBuffer* cur = shard.pending.load(std::memory_order_relaxed);
  size_t n = cur ? cur->size_unsync() : 0;
  // Stamp the overlay's birth for the autocommit age trigger: this runs
  // under writer_mu on every buffered write, so an empty→non-empty
  // transition is exactly "no staged rows here, rows about to land".
  if (n == 0 && options_.autocommit_interval.count() > 0) {
    shard.first_staged = std::chrono::steady_clock::now();
  }
  if (cur != nullptr && n + rows_needed <= cur->capacity()) return cur;

  // Grow (or bootstrap) by replacement: build the bigger block privately,
  // then swap it in with one seq_cst exchange. A reader pinned on the old
  // block keeps scanning it safely until reclamation; a reader that loads
  // the new pointer sees every copied row (the exchange release-publishes
  // them).
  size_t want = NextPowerOfTwo(std::max<uint64_t>(
      64, std::max<uint64_t>(n + rows_needed,
                             cur ? 2 * cur->capacity() : 0)));
  const size_t num_attrs = static_cast<size_t>(config().num_attrs);
  WriteBuffer* fresh = shard.spare.exchange(nullptr, std::memory_order_acq_rel);
  if (fresh != nullptr && fresh->capacity() >= want) {
    fresh->Reset();
  } else {
    delete fresh;
    fresh = new WriteBuffer(want, num_attrs);
  }
  if (cur != nullptr) fresh->Adopt(*cur, n);
  shard.pending.store(fresh, std::memory_order_seq_cst);
  RetireBuffer(shard, cur);
  return fresh;
}

void ShardedCcf::RetireBuffer(Shard& shard, WriteBuffer* old) {
  if (old == nullptr) return;
  // Not a plain delete: once no reader can hold the block, stash it in the
  // shard's single recycle slot so steady-state staging reuses the
  // allocation (util/epoch.h's generalized retire hook). Retired into the
  // SHARD'S domain — the one every reader of this shard pins.
  shard.handle.domain()->RetireHook([&shard, old] {
    WriteBuffer* prev = shard.spare.exchange(old, std::memory_order_acq_rel);
    delete prev;
  });
}

// --- Retained-log maintenance (all callers hold the shard's writer_mu) ------

void ShardedCcf::LogAppendRows(Shard& shard, std::span<const uint64_t> keys,
                               std::span<const uint64_t> attrs,
                               std::span<const uint64_t> memo) {
  size_t first = shard.keys.size();
  shard.keys.insert(shard.keys.end(), keys.begin(), keys.end());
  shard.attrs.insert(shard.attrs.end(), attrs.begin(), attrs.end());
  shard.memo.insert(shard.memo.end(), memo.begin(), memo.end());
  shard.dead.resize(shard.keys.size(), 0);
  if (shard.index_built) {
    for (size_t r = 0; r < keys.size(); ++r) {
      shard.row_index[keys[r]].push_back(static_cast<uint32_t>(first + r));
    }
  }
}

void ShardedCcf::LogTruncate(Shard& shard, size_t old_rows) {
  const size_t num_attrs = static_cast<size_t>(config().num_attrs);
  for (size_t r = shard.keys.size(); r-- > old_rows;) {
    if (shard.dead[r]) --shard.dead_count;
    if (shard.index_built) {
      // Truncated rows are the newest entries of their key's list.
      auto it = shard.row_index.find(shard.keys[r]);
      it->second.pop_back();
      if (it->second.empty()) shard.row_index.erase(it);
    }
  }
  shard.keys.resize(old_rows);
  shard.attrs.resize(old_rows * num_attrs);
  shard.memo.resize(old_rows * 2);
  shard.dead.resize(old_rows);
}

void ShardedCcf::EnsureLogIndex(Shard& shard) {
  if (shard.index_built) return;
  shard.dead.resize(shard.keys.size(), 0);
  shard.row_index.clear();
  for (size_t r = 0; r < shard.keys.size(); ++r) {
    shard.row_index[shard.keys[r]].push_back(static_cast<uint32_t>(r));
  }
  shard.index_built = true;
}

Status ShardedCcf::BufferWrite(uint64_t key, std::span<const uint64_t> attrs) {
  if (static_cast<int>(attrs.size()) != config().num_attrs) {
    return Status::Invalid("attribute count does not match schema");
  }
  Shard& shard = *shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.writer_mu);
  WriteBuffer* buffer = PendingWithRoom(shard, 1);
  uint64_t key_hash, payload;
  static_cast<CcfBase*>(shard.handle.writable())
      ->MemoizeRow(key, attrs, &key_hash, &payload);
  buffer->Append(key, attrs, key_hash, payload);
  MaybeScheduleAutoCommit(ShardOf(key), shard);
  return Status::OK();
}

Status ShardedCcf::BufferWriteBatch(std::span<const uint64_t> keys,
                                    std::span<const uint64_t> attrs) {
  const size_t num_attrs = static_cast<size_t>(config().num_attrs);
  if (attrs.size() != keys.size() * num_attrs) {
    return Status::Invalid(
        "BufferWriteBatch: attrs must hold keys.size() * num_attrs values");
  }
  // Gather per shard first so each shard's writer mutex is taken once and
  // its buffer grown at most once.
  std::vector<std::vector<size_t>> shard_rows(shards_.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    shard_rows[ShardOf(keys[i])].push_back(i);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shard_rows[s].empty()) continue;
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.writer_mu);
    WriteBuffer* buffer = PendingWithRoom(shard, shard_rows[s].size());
    auto* base = static_cast<CcfBase*>(shard.handle.writable());
    // Stage the whole shard group, then publish it with ONE release
    // store: a concurrent reader sees all of the group's records or none.
    // All records of one key land in one shard (routing hashes the key),
    // so any per-key record group — e.g. the η dyadic labels of a
    // RangeCcf row — becomes visible atomically.
    size_t staged = 0;
    for (size_t i : shard_rows[s]) {
      std::span<const uint64_t> row_attrs =
          attrs.subspan(i * num_attrs, num_attrs);
      uint64_t key_hash, payload;
      base->MemoizeRow(keys[i], row_attrs, &key_hash, &payload);
      buffer->Stage(staged++, keys[i], row_attrs, key_hash, payload);
    }
    buffer->PublishStaged(staged);
    MaybeScheduleAutoCommit(s, shard);
  }
  return Status::OK();
}

namespace {

// Shared precondition of the tombstone stagers: the log must exist (erases
// are marked dead there exactly) and the geometry must pack payloads into
// one word (the erase class is (key, packed payload word)).
Status ValidateCrudShard(bool resizable, const CcfBase& base) {
  if (!resizable) {
    return Status::Invalid(
        "ShardedCcf: deserialized filters retain no row log; erase/update "
        "is unavailable");
  }
  if (base.table().slot_bits() > 64) {
    return Status::Invalid(
        "ShardedCcf: erase/update requires packed payload words "
        "(slot_bits <= 64)");
  }
  return Status::OK();
}

}  // namespace

Status ShardedCcf::BufferErase(uint64_t key, std::span<const uint64_t> attrs) {
  if (static_cast<int>(attrs.size()) != config().num_attrs) {
    return Status::Invalid("attribute count does not match schema");
  }
  Shard& shard = *shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.writer_mu);
  auto* base = static_cast<CcfBase*>(shard.handle.writable());
  CCF_RETURN_NOT_OK(ValidateCrudShard(resizable_, *base));
  WriteBuffer* buffer = PendingWithRoom(shard, 1);
  uint64_t key_hash, payload;
  base->MemoizeRow(key, attrs, &key_hash, &payload);
  buffer->Append(key, attrs, key_hash, payload, WriteBuffer::kOpErase);
  MaybeScheduleAutoCommit(ShardOf(key), shard);
  return Status::OK();
}

Status ShardedCcf::BufferUpdate(uint64_t key,
                                std::span<const uint64_t> old_attrs,
                                std::span<const uint64_t> new_attrs) {
  if (static_cast<int>(old_attrs.size()) != config().num_attrs ||
      static_cast<int>(new_attrs.size()) != config().num_attrs) {
    return Status::Invalid("attribute count does not match schema");
  }
  Shard& shard = *shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.writer_mu);
  auto* base = static_cast<CcfBase*>(shard.handle.writable());
  CCF_RETURN_NOT_OK(ValidateCrudShard(resizable_, *base));
  WriteBuffer* buffer = PendingWithRoom(shard, 2);
  uint64_t old_hash, old_payload, new_hash, new_payload;
  base->MemoizeRow(key, old_attrs, &old_hash, &old_payload);
  base->MemoizeRow(key, new_attrs, &new_hash, &new_payload);
  buffer->AppendUpdate(key, old_attrs, old_hash, old_payload, new_attrs,
                       new_hash, new_payload);
  MaybeScheduleAutoCommit(ShardOf(key), shard);
  return Status::OK();
}

Status ShardedCcf::CommitShardLocked(size_t s, Shard& shard) {
  // The clone's copy-on-write unshare below allocates the replacement
  // table: bind those pages to the shard's node.
  ScopedNumaAllocNode alloc_scope(AllocNode(shard));
  WriteBuffer* pending = shard.pending.load(std::memory_order_relaxed);
  size_t n = pending ? pending->size_unsync() : 0;
  if (n == 0) return Status::OK();
  if (pending->num_erases_unsync() > 0) return CommitShardCrudLocked(s, shard);

  std::span<const uint64_t> keys = pending->keys(n);
  std::span<const uint64_t> attrs = pending->attrs(n);
  std::span<const uint64_t> memo = pending->memo(n);

  // Build the staged rows into a copy-on-write clone OFF the serving path:
  // Clone shares the published table, and the clone's InsertBatch unshares
  // it before the first write, so readers of the published snapshot never
  // observe intermediate placement. The staged memo words feed InsertBatch's
  // reuse path — commit re-masks, it never re-hashes.
  CCF_ASSIGN_OR_RETURN(std::unique_ptr<ConditionalCuckooFilter> clone,
                       shard.handle.writable()->Clone());
  std::vector<uint64_t> memo_words(memo.begin(), memo.end());
  Status st = clone->InsertBatch(keys, attrs, &memo_words);

  bool committed = false;
  if (st.ok()) {
    shard.handle.Publish(std::move(clone));
    committed = true;
  } else if (st.code() == StatusCode::kCapacityError && resizable_ &&
             options_.max_auto_resizes > 0) {
    // The clone could not absorb the batch: fall back to the auto-resize
    // doubling rebuild from the retained log WITH the pending rows appended
    // (a successful rebuild publishes a table containing them).
    size_t logged_rows = shard.keys.size();
    LogAppendRows(shard, keys, attrs, memo);
    Status grown = GrowShardLocked(shard, std::move(st));
    if (!grown.ok()) {
      // No attempt published: un-append so the log mirrors exactly the
      // committed row set, and keep the rows staged for a retry.
      LogTruncate(shard, logged_rows);
      return grown;
    }
    // The rebuild placed the batch (the log already carries it): drop the
    // overlay (ordering note below) and check the watermark.
    RetireBuffer(shard,
                 shard.pending.exchange(nullptr, std::memory_order_seq_cst));
    MaybeScheduleWatermarkResize(s, shard);
    return Status::OK();
  }

  if (!committed) {
    // Commit failed (capacity with auto-resize unavailable, or a non-
    // capacity error): the rows stay staged and overlay-visible so the
    // caller can ResizeShard and retry without losing writes.
    return st;
  }

  if (resizable_) {
    // Mirror the batch into the retained row log in staging order — the
    // same arrival-order contract the in-place paths keep, which is what
    // makes a later log rebuild bit-identical to a from-scratch batched
    // build of the full row set.
    LogAppendRows(shard, keys, attrs, memo);
  }

  // Drop the overlay only AFTER the new table is published: between the two
  // swaps a reader may see the rows in both places (harmless — answers are
  // a union); the reverse order would open a false-negative window.
  RetireBuffer(shard,
               shard.pending.exchange(nullptr, std::memory_order_seq_cst));
  MaybeScheduleWatermarkResize(s, shard);
  return Status::OK();
}

Status ShardedCcf::CommitShardCrudLocked(size_t s, Shard& shard) {
  ScopedNumaAllocNode alloc_scope(AllocNode(shard));
  WriteBuffer* pending = shard.pending.load(std::memory_order_relaxed);
  const size_t n = pending->size_unsync();
  const size_t num_attrs = static_cast<size_t>(config().num_attrs);
  EnsureLogIndex(shard);

  std::span<const uint64_t> keys = pending->keys(n);
  std::span<const uint64_t> attrs = pending->attrs(n);
  std::span<const uint64_t> memo = pending->memo(n);

  // Apply the staged records IN ORDER against a copy-on-write clone: runs
  // of consecutive inserts go through the batched memo path exactly like
  // the erase-free commit, and each tombstone (a) plans its log dead-marks
  // from the key index — the EXACT bookkeeping — and (b) best-effort
  // reclaims the clone's table entry. In-order application keeps
  // erase-then-reinsert sequences correct.
  CCF_ASSIGN_OR_RETURN(std::unique_ptr<ConditionalCuckooFilter> clone,
                       shard.handle.writable()->Clone());
  auto* base = static_cast<CcfBase*>(clone.get());

  // Insert records by key, for in-batch kills (an erase record also kills
  // matching inserts staged BEFORE it in this very batch) and for the Bloom
  // key-liveness gate.
  std::unordered_map<uint64_t, std::vector<uint32_t>> batch_inserts;
  size_t staged_inserts = 0;
  for (size_t i = 0; i < n; ++i) {
    if (pending->op(i) == WriteBuffer::kOpInsert) {
      batch_inserts[pending->key(i)].push_back(static_cast<uint32_t>(i));
      ++staged_inserts;
    }
  }

  std::vector<uint32_t> plan_dead;        // log rows to mark dead on success
  std::unordered_set<uint32_t> planned;   // dedupe across erase records
  std::vector<uint8_t> record_dead(n, 0); // staged inserts killed in-batch
  Status capacity_error = Status::OK();
  bool capacity_failed = false;

  size_t i = 0;
  while (i < n) {
    if (pending->op(i) == WriteBuffer::kOpInsert) {
      size_t j = i + 1;
      while (j < n && pending->op(j) == WriteBuffer::kOpInsert) ++j;
      if (!capacity_failed) {
        std::vector<uint64_t> memo_words(memo.begin() + 2 * i,
                                         memo.begin() + 2 * j);
        Status st = base->InsertBatch(
            keys.subspan(i, j - i),
            attrs.subspan(i * num_attrs, (j - i) * num_attrs), &memo_words);
        if (st.code() == StatusCode::kCapacityError) {
          // Keep PLANNING the remaining records (the doubled rebuild below
          // needs the batch's full net effect on the log); stop touching
          // the doomed clone.
          capacity_failed = true;
          capacity_error = std::move(st);
        } else if (!st.ok()) {
          // Non-capacity failure: nothing published, nothing logged, rows
          // stay staged and overlay-visible.
          return st;
        }
      }
      i = j;
      continue;
    }
    // Erase record: kill the (key, payload) class.
    const uint64_t key = pending->key(i);
    const uint64_t payload = pending->payload(i);
    bool any_dead = false;
    auto bit = batch_inserts.find(key);
    if (bit != batch_inserts.end()) {
      for (uint32_t r : bit->second) {
        if (r >= i) break;  // records staged after this erase are unaffected
        if (!record_dead[r] && pending->payload(r) == payload) {
          record_dead[r] = 1;
          any_dead = true;
        }
      }
    }
    auto lit = shard.row_index.find(key);
    if (lit != shard.row_index.end()) {
      for (uint32_t row : lit->second) {
        if (!shard.dead[row] && shard.memo[2 * row + 1] == payload &&
            planned.insert(row).second) {
          plan_dead.push_back(row);
          any_dead = true;
        }
      }
    }
    if (any_dead && !capacity_failed) {
      // Physical reclamation is gated on the tombstone actually killing a
      // row we know about — an erase of a never-inserted row must not
      // delete a fingerprint-colliding entry. For the Bloom variant the
      // entry is the OR-fold of EVERY row of the key, so it may only be
      // deleted once no live row of the key remains (subset folds make
      // word-equality alone unsound there).
      bool reclaim = true;
      if (variant_ == CcfVariant::kBloom) {
        if (lit != shard.row_index.end()) {
          for (uint32_t row : lit->second) {
            if (!shard.dead[row] && planned.count(row) == 0) {
              reclaim = false;
              break;
            }
          }
        }
        if (reclaim && bit != batch_inserts.end()) {
          for (uint32_t r : bit->second) {
            if (r >= i) break;
            if (!record_dead[r]) {
              reclaim = false;
              break;
            }
          }
        }
      }
      if (reclaim) base->EraseRowMemoized(pending->key_hash(i), payload);
    }
    ++i;
  }

  // The batch's net effect on the log: mark the planned tombstones dead and
  // append the surviving staged inserts.
  auto apply_log = [&]() -> size_t {
    size_t old_rows = shard.keys.size();
    for (uint32_t row : plan_dead) {
      shard.dead[row] = 1;
      ++shard.dead_count;
    }
    for (size_t r = 0; r < n; ++r) {
      if (pending->op(r) != WriteBuffer::kOpInsert || record_dead[r]) continue;
      uint64_t row_key = pending->key(r);
      uint64_t row_memo[2] = {pending->key_hash(r), pending->payload(r)};
      LogAppendRows(shard, std::span<const uint64_t>(&row_key, 1),
                    pending->attrs_row(r),
                    std::span<const uint64_t>(row_memo, 2));
    }
    return old_rows;
  };

  if (capacity_failed) {
    // The clone could not absorb the batch: discard it and fall back to the
    // doubled rebuild from the log carrying the batch's net effect — the
    // rebuilt table contains the survivors only, no residue.
    clone.reset();
    size_t old_rows = apply_log();
    Status grown = GrowShardLocked(shard, std::move(capacity_error));
    if (!grown.ok()) {
      // No attempt published: roll the log back exactly (un-append, un-mark)
      // and keep the records staged for a retry.
      LogTruncate(shard, old_rows);
      for (uint32_t row : plan_dead) {
        shard.dead[row] = 0;
        --shard.dead_count;
      }
      return grown;
    }
  } else {
    // Class erases kill rows the variant's erase hook cannot count (one
    // entry may stand for several collapsed duplicates, and unreclaimable
    // residue never reaches the hook): set the logical row count from the
    // log plan, which is exact — live log rows before the batch, minus the
    // planned tombstones, plus the staged inserts that survived in-batch
    // kills. Rebuild paths (resize, compaction) recount the same way.
    size_t killed_in_batch = 0;
    for (uint8_t d : record_dead) killed_in_batch += d;
    base->SetNumRows(shard.keys.size() - shard.dead_count -
                     plan_dead.size() + staged_inserts - killed_in_batch);
    shard.handle.Publish(std::move(clone));
    apply_log();
  }

  // Drop the overlay only AFTER the new table is published — same
  // straddling-reader argument as the erase-free commit (a reader holding
  // both sees the union, and exclusions re-applied against the new table
  // are no-ops on already-reclaimed entries).
  RetireBuffer(shard,
               shard.pending.exchange(nullptr, std::memory_order_seq_cst));
  MaybeCompactShard(shard);
  MaybeScheduleWatermarkResize(s, shard);
  return Status::OK();
}

void ShardedCcf::ForEachShardParallel(
    int threads, const std::function<void(size_t)>& work) {
  const size_t num_shards = shards_.size();
  if (threads <= 1) {
    for (size_t s = 0; s < num_shards; ++s) work(s);
    return;
  }
  const size_t num_nodes = domains_.size();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  // Declared at function scope: the pinned workers read it until join().
  std::vector<std::vector<size_t>> node_shards(num_nodes);
  if (numa_active_ && num_nodes > 1 &&
      threads >= static_cast<int>(num_nodes)) {
    // Node-major: worker t serves node t % num_nodes, pinned to that
    // node's cpus, and stripes over ITS node's shards only — every shard
    // mutation (and the mbind'ed allocations inside it) runs on the node
    // that owns the shard's pages. threads >= num_nodes guarantees each
    // node gets at least one worker, so every shard is covered.
    for (size_t s = 0; s < num_shards; ++s) {
      node_shards[static_cast<size_t>(shards_[s]->node)].push_back(s);
    }
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        const size_t node = static_cast<size_t>(t) % num_nodes;
        // Workers on the same node stripe its shard list; `offset` is this
        // worker's rank among them and `stride` their count.
        const size_t offset = static_cast<size_t>(t) / num_nodes;
        const size_t stride =
            (static_cast<size_t>(threads) - node - 1) / num_nodes + 1;
        PinThreadToNode(*topo_, static_cast<int>(node)).ok();
        for (size_t i = offset; i < node_shards[node].size(); i += stride) {
          work(node_shards[node][i]);
        }
      });
    }
  } else {
    // Plain modular striping (single node, inactive policy, or too few
    // threads to cover every node with a pinned worker).
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (size_t s = static_cast<size_t>(t); s < num_shards;
             s += static_cast<size_t>(threads)) {
          work(s);
        }
      });
    }
  }
  for (auto& w : workers) w.join();
}

Status ShardedCcf::CommitWrites(int num_threads) {
  const size_t num_shards = shards_.size();
  std::vector<Status> shard_status(num_shards);
  // Pre-scan staged sizes under a pin (a racing committer may swap and
  // retire the block we peek at) to decide whether striping is worth it:
  // with at most one non-empty shard the commit runs inline on the calling
  // thread, exactly the historical behavior.
  size_t nonempty = 0;
  {
    std::vector<EpochDomain::Guard> guards = PinAll();
    for (const auto& s : shards_) {
      const WriteBuffer* p = s->pending.load(std::memory_order_seq_cst);
      if (p != nullptr && p->size() > 0) ++nonempty;
    }
  }
  int threads = num_threads > 0 ? num_threads : options_.build_threads;
  if (threads <= 0) threads = static_cast<int>(num_shards);
  threads = std::min<int>(threads, static_cast<int>(num_shards));
  if (nonempty <= 1) threads = 1;
  ForEachShardParallel(threads, [&](size_t s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.writer_mu);
    shard_status[s] = CommitShardLocked(s, shard);
  });
  return AggregateShardStatus(shard_status);
}

std::future<Status> ShardedCcf::CommitWritesAsync() {
  return std::async(std::launch::async, [this] { return CommitWrites(); });
}

uint64_t ShardedCcf::pending_writes() const {
  std::vector<EpochDomain::Guard> guards = PinAll();
  uint64_t n = 0;
  for (const auto& s : shards_) {
    const WriteBuffer* p = s->pending.load(std::memory_order_seq_cst);
    if (p != nullptr) n += p->size();
  }
  return n;
}

void ShardedCcf::MaybeScheduleWatermarkResize(size_t s, Shard& shard) {
  if (!resizable_ || options_.resize_watermark <= 0.0) return;
  const auto* base = static_cast<const CcfBase*>(shard.handle.writable());
  uint64_t slots = base->table().num_slots();
  if (slots == 0 ||
      static_cast<double>(base->num_entries()) <
          options_.resize_watermark * static_cast<double>(slots)) {
    return;
  }
  bool expected = false;
  if (!shard.resize_scheduled.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    return;  // a resize for this shard is already in flight
  }
  std::lock_guard<std::mutex> lock(maintenance_mu_);
  // Opportunistically reap finished futures so the list stays small.
  maintenance_.erase(
      std::remove_if(maintenance_.begin(), maintenance_.end(),
                     [](std::future<Status>& f) {
                       if (f.wait_for(std::chrono::seconds(0)) ==
                           std::future_status::ready) {
                         f.get();
                         return true;
                       }
                       return false;
                     }),
      maintenance_.end());
  maintenance_.push_back(std::async(std::launch::async, [this, s] {
    // The doubling rebuild itself: runs on this background thread, takes
    // the shard's writer mutex (so it serializes AFTER the commit that
    // scheduled it releases the lock), publishes via epoch swap. Pinned to
    // the shard's node so the rebuilt table faults in node-local
    // (best-effort; the alloc-scope mbind inside the rebuild is the
    // stronger guarantee).
    if (numa_active_) PinThreadToNode(*topo_, shards_[s]->node).ok();
    Status st = ResizeShard(static_cast<int>(s));
    if (st.ok()) {
      num_watermark_resizes_.fetch_add(1, std::memory_order_relaxed);
    }
    shards_[s]->resize_scheduled.store(false, std::memory_order_release);
    return st;
  }));
}

void ShardedCcf::MaybeScheduleAutoCommit(size_t s, Shard& shard) {
  const bool size_enabled = options_.autocommit_pending_rows > 0;
  const bool age_enabled = options_.autocommit_interval.count() > 0;
  if (!size_enabled && !age_enabled) return;
  WriteBuffer* pending = shard.pending.load(std::memory_order_relaxed);
  size_t n = pending ? pending->size_unsync() : 0;
  if (n == 0) return;
  bool trigger = size_enabled && n >= options_.autocommit_pending_rows;
  if (!trigger && age_enabled) {
    trigger = std::chrono::steady_clock::now() - shard.first_staged >=
              options_.autocommit_interval;
  }
  if (!trigger) return;
  bool expected = false;
  if (!shard.commit_scheduled.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    return;  // an auto-commit for this shard is already in flight
  }
  std::lock_guard<std::mutex> lock(maintenance_mu_);
  maintenance_.erase(
      std::remove_if(maintenance_.begin(), maintenance_.end(),
                     [](std::future<Status>& f) {
                       if (f.wait_for(std::chrono::seconds(0)) ==
                           std::future_status::ready) {
                         f.get();
                         return true;
                       }
                       return false;
                     }),
      maintenance_.end());
  maintenance_.push_back(std::async(std::launch::async, [this, s] {
    // Same shape as the watermark-resize task: serialize after the write
    // that scheduled us by taking the shard's writer mutex, commit the
    // overlay into a copy-on-write clone, publish via epoch swap. Staged
    // rows stay query-visible the whole time, so a failed background
    // commit only means the overlay stays long until the next trigger or
    // an explicit CommitWrites.
    if (numa_active_) PinThreadToNode(*topo_, shards_[s]->node).ok();
    Shard& shard = *shards_[s];
    Status st;
    {
      std::lock_guard<std::mutex> lock(shard.writer_mu);
      st = CommitShardLocked(s, shard);
      if (st.ok()) MaybeScheduleWatermarkResize(s, shard);
    }
    if (st.ok()) num_autocommits_.fetch_add(1, std::memory_order_relaxed);
    shard.commit_scheduled.store(false, std::memory_order_release);
    return st;
  }));
}

void ShardedCcf::DrainMaintenance() {
  std::vector<std::future<Status>> pending;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(maintenance_mu_);
      pending.swap(maintenance_);
    }
    if (pending.empty()) return;
    // Background statuses are advisory (the policy re-fires at the next
    // commit); joining is what matters here.
    for (auto& f : pending) f.get();
    pending.clear();
    // A drained resize may have scheduled nothing more, but a commit racing
    // with the drain could have; loop until the list stays empty.
  }
}

Status ShardedCcf::InsertParallel(std::span<const uint64_t> keys,
                                  std::span<const uint64_t> attrs,
                                  int num_threads,
                                  std::vector<uint64_t>* hash_memo) {
  const size_t num_attrs = static_cast<size_t>(config().num_attrs);
  if (attrs.size() != keys.size() * num_attrs) {
    return Status::Invalid(
        "InsertParallel: attrs must hold keys.size() * num_attrs values");
  }
  if (hash_memo != nullptr && !hash_memo->empty() &&
      hash_memo->size() != 2 * keys.size()) {
    return Status::Invalid(
        "InsertParallel: hash_memo must be empty or hold two words per key");
  }
  const bool reuse_memo = hash_memo != nullptr && !hash_memo->empty();
  const bool fill_memo = hash_memo != nullptr && !reuse_memo;

  // Gather contiguous per-shard rows (insertion order preserved per shard)
  // so each shard's whole build is one batched InsertBatch over its slice —
  // the write-side analogue of the batched lookup's gather/delegate path.
  const size_t num_shards = shards_.size();
  std::vector<std::vector<uint64_t>> shard_keys(num_shards);
  std::vector<std::vector<uint64_t>> shard_attrs(num_shards);
  std::vector<std::vector<uint64_t>> shard_memo(num_shards);
  std::vector<std::vector<size_t>> shard_pos(fill_memo ? num_shards : 0);
  size_t expect = keys.size() / num_shards + 16;
  for (auto& v : shard_keys) v.reserve(expect);
  for (auto& v : shard_attrs) v.reserve(expect * num_attrs);
  for (size_t i = 0; i < keys.size(); ++i) {
    size_t s = ShardOf(keys[i]);
    shard_keys[s].push_back(keys[i]);
    shard_attrs[s].insert(shard_attrs[s].end(),
                          attrs.begin() + static_cast<ptrdiff_t>(i * num_attrs),
                          attrs.begin() +
                              static_cast<ptrdiff_t>((i + 1) * num_attrs));
    if (reuse_memo) {
      shard_memo[s].push_back((*hash_memo)[2 * i]);
      shard_memo[s].push_back((*hash_memo)[2 * i + 1]);
    }
    if (fill_memo) shard_pos[s].push_back(i);
  }

  int threads = num_threads > 0 ? num_threads : options_.build_threads;
  if (threads <= 0) threads = static_cast<int>(num_shards);
  threads = std::min<int>(threads, static_cast<int>(num_shards));

  std::vector<Status> shard_status(num_shards);
  ForEachShardParallel(threads, [&](size_t s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.writer_mu);
    // shard_memo[s] is empty on un-memoized builds; InsertBatch fills it
    // during its address pass (which runs for every row even when
    // placement later fails), so the row log below always carries
    // complete memo words.
    Status st = shard.handle.writable()->InsertBatch(
        shard_keys[s], shard_attrs[s], &shard_memo[s]);
    if (resizable_) {
      // The WHOLE batch joins the log even if placement fails below: a
      // failed InsertBatch leaves an unspecified subset of the batch in
      // the table, so a later rebuild must re-place all of it — dropping
      // the batch could lose rows that DID land (false negatives),
      // whereas keeping it only errs toward extra rows, the filter's
      // one-sided error direction. (Scalar Insert, whose failure rolls
      // the table back, does unlog its row — see Insert.)
      LogAppendRows(shard, shard_keys[s], shard_attrs[s], shard_memo[s]);
    }
    if (st.code() == StatusCode::kCapacityError) {
      // Online resize instead of failing the build: rebuild this shard
      // (doubling) from its retained log while other shards proceed —
      // readers of the shard keep probing the published snapshot.
      st = GrowShardLocked(shard, std::move(st));
    }
    if (st.ok()) MaybeScheduleWatermarkResize(s, shard);
    shard_status[s] = std::move(st);
  });

  if (fill_memo) {
    // Scatter the per-shard memo words back to input order so the caller's
    // memo is shard-layout-agnostic (and reusable by an unsharded rebuild
    // too).
    hash_memo->resize(2 * keys.size());
    for (size_t s = 0; s < num_shards; ++s) {
      for (size_t j = 0; j < shard_pos[s].size(); ++j) {
        (*hash_memo)[2 * shard_pos[s][j]] = shard_memo[s][2 * j];
        (*hash_memo)[2 * shard_pos[s][j] + 1] = shard_memo[s][2 * j + 1];
      }
    }
  }

  return AggregateShardStatus(shard_status);
}

Status ShardedCcf::InsertBatch(std::span<const uint64_t> keys,
                               std::span<const uint64_t> attrs,
                               std::vector<uint64_t>* hash_memo) {
  return InsertParallel(keys, attrs, /*num_threads=*/0, hash_memo);
}

Status ShardedCcf::ResizeShardLocked(Shard& shard, uint64_t new_num_buckets) {
  if (!resizable_) {
    return Status::Invalid(
        "ShardedCcf: deserialized filters retain no row log; online resize "
        "is unavailable");
  }
  // The replacement table's pages bind to the shard's node regardless of
  // which thread runs the rebuild (caller, async resize, or watermark
  // maintenance).
  ScopedNumaAllocNode alloc_scope(AllocNode(shard));
  ConditionalCuckooFilter* cur = shard.handle.writable();
  CcfConfig cfg = cur->config();
  cfg.num_buckets =
      new_num_buckets != 0 ? new_num_buckets : cfg.num_buckets * 2;
  CCF_ASSIGN_OR_RETURN(std::unique_ptr<ConditionalCuckooFilter> fresh,
                       ConditionalCuckooFilter::Make(cur->variant(), cfg));
  // Re-place every LIVE logged row from the memo (cached hashes are
  // re-masked at the new geometry, not re-hashed — PR 3's memoized-rebuild
  // machinery). InsertBatch is deterministic, so the rebuilt shard is
  // bit-identical to a from-scratch batched build of the surviving rows at
  // the new geometry — erase residue does not survive a resize. The log
  // itself is NOT rewritten here (row indices stay stable for the commit
  // rollback paths); compaction owns log rewriting.
  if (shard.dead_count == 0) {
    CCF_RETURN_NOT_OK(
        fresh->InsertBatch(shard.keys, shard.attrs, &shard.memo));
  } else {
    const size_t num_attrs = static_cast<size_t>(config().num_attrs);
    std::vector<uint64_t> live_keys, live_attrs, live_memo;
    size_t live = shard.keys.size() - shard.dead_count;
    live_keys.reserve(live);
    live_attrs.reserve(live * num_attrs);
    live_memo.reserve(live * 2);
    for (size_t r = 0; r < shard.keys.size(); ++r) {
      if (shard.dead[r]) continue;
      live_keys.push_back(shard.keys[r]);
      live_attrs.insert(
          live_attrs.end(),
          shard.attrs.begin() + static_cast<ptrdiff_t>(r * num_attrs),
          shard.attrs.begin() + static_cast<ptrdiff_t>((r + 1) * num_attrs));
      live_memo.push_back(shard.memo[2 * r]);
      live_memo.push_back(shard.memo[2 * r + 1]);
    }
    CCF_RETURN_NOT_OK(fresh->InsertBatch(live_keys, live_attrs, &live_memo));
  }
  // Swap the snapshot in one atomic publish; concurrent readers finish
  // their probes against the old table, which the epoch domain frees once
  // the last of them unpins.
  shard.handle.Publish(std::move(fresh));
  num_resizes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status ShardedCcf::GrowShardLocked(Shard& shard, Status capacity_error) {
  if (!resizable_ || options_.max_auto_resizes <= 0) return capacity_error;
  uint64_t buckets = shard.handle.writable()->config().num_buckets;
  Status st = std::move(capacity_error);
  for (int attempt = 0; attempt < options_.max_auto_resizes; ++attempt) {
    buckets *= 2;  // §4.1's resize rule, applied to one shard
    st = ResizeShardLocked(shard, buckets);
    if (st.code() != StatusCode::kCapacityError) return st;
  }
  return st;
}

Status ShardedCcf::CompactShardLocked(Shard& shard) {
  if (!resizable_) {
    return Status::Invalid(
        "ShardedCcf: deserialized filters retain no row log; compaction is "
        "unavailable");
  }
  ScopedNumaAllocNode alloc_scope(AllocNode(shard));
  ConditionalCuckooFilter* cur = shard.handle.writable();
  const size_t num_attrs = static_cast<size_t>(config().num_attrs);
  std::vector<uint64_t> live_keys, live_attrs, live_memo;
  size_t live = shard.keys.size() - shard.dead_count;
  live_keys.reserve(live);
  live_attrs.reserve(live * num_attrs);
  live_memo.reserve(live * 2);
  for (size_t r = 0; r < shard.keys.size(); ++r) {
    if (r < shard.dead.size() && shard.dead[r]) continue;
    live_keys.push_back(shard.keys[r]);
    live_attrs.insert(
        live_attrs.end(),
        shard.attrs.begin() + static_cast<ptrdiff_t>(r * num_attrs),
        shard.attrs.begin() + static_cast<ptrdiff_t>((r + 1) * num_attrs));
    live_memo.push_back(shard.memo[2 * r]);
    live_memo.push_back(shard.memo[2 * r + 1]);
  }
  // A fresh build at the CURRENT geometry from the survivors, in log order:
  // deterministic InsertBatch makes the result byte-identical to a
  // from-scratch batched build of the surviving row set, so compaction
  // clears every flavour of erase residue (saturated chain copies, shared
  // Bloom folds, converted fragments of dead rows).
  CcfConfig cfg = cur->config();
  CCF_ASSIGN_OR_RETURN(std::unique_ptr<ConditionalCuckooFilter> fresh,
                       ConditionalCuckooFilter::Make(cur->variant(), cfg));
  Status st = fresh->InsertBatch(live_keys, live_attrs, &live_memo);
  if (!st.ok()) return st;  // table and log untouched; next trigger retries
  shard.handle.Publish(std::move(fresh));
  // The table now reflects exactly the survivors: rewrite the log to match.
  shard.keys.swap(live_keys);
  shard.attrs.swap(live_attrs);
  shard.memo.swap(live_memo);
  shard.dead.assign(shard.keys.size(), 0);
  shard.dead_count = 0;
  if (shard.index_built) {
    shard.row_index.clear();
    for (size_t r = 0; r < shard.keys.size(); ++r) {
      shard.row_index[shard.keys[r]].push_back(static_cast<uint32_t>(r));
    }
  }
  num_compactions_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void ShardedCcf::MaybeCompactShard(Shard& shard) {
  const double wm = options_.compact_watermark;
  if (!resizable_ || wm <= 0.0 || shard.dead_count == 0) return;
  if (static_cast<double>(shard.dead_count) <
      wm * static_cast<double>(shard.keys.size())) {
    return;
  }
  // Advisory, like the watermark resize statuses: a failed attempt leaves
  // the shard fully consistent and the next commit re-fires the trigger.
  CompactShardLocked(shard).ok();
}

Status ShardedCcf::Compact() {
  if (!resizable_) {
    return Status::Invalid(
        "ShardedCcf: deserialized filters retain no row log; compaction is "
        "unavailable");
  }
  std::vector<Status> shard_status(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.writer_mu);
    shard_status[s] = CompactShardLocked(shard);
  }
  return AggregateShardStatus(shard_status);
}

uint64_t ShardedCcf::retained_log_rows() const {
  uint64_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->writer_mu);
    n += s->keys.size();
  }
  return n;
}

uint64_t ShardedCcf::dead_log_rows() const {
  uint64_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->writer_mu);
    n += s->dead_count;
  }
  return n;
}

Status ShardedCcf::ResizeShard(int shard, uint64_t new_num_buckets) {
  if (shard < 0 || shard >= num_shards()) {
    return Status::OutOfRange("ResizeShard: shard index out of range");
  }
  Shard& sh = *shards_[static_cast<size_t>(shard)];
  std::lock_guard<std::mutex> lock(sh.writer_mu);
  return ResizeShardLocked(sh, new_num_buckets);
}

std::future<Status> ShardedCcf::ResizeShardAsync(int shard,
                                                 uint64_t new_num_buckets) {
  return std::async(std::launch::async, [this, shard, new_num_buckets] {
    if (numa_active_ && shard >= 0 && shard < num_shards()) {
      PinThreadToNode(*topo_, shards_[static_cast<size_t>(shard)]->node).ok();
    }
    return ResizeShard(shard, new_num_buckets);
  });
}

std::vector<EpochDomain::Guard> ShardedCcf::PinAll() const {
  std::vector<EpochDomain::Guard> guards;
  guards.reserve(domains_.size());
  for (const auto& domain : domains_) guards.push_back(domain->Pin());
  return guards;
}

std::vector<const CcfBase*> ShardedCcf::LoadBases(
    const std::vector<EpochDomain::Guard>& guards) const {
  std::vector<const CcfBase*> bases(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    bases[s] = static_cast<const CcfBase*>(shards_[s]->handle.Load(
        guards[static_cast<size_t>(shards_[s]->node)]));
  }
  return bases;
}

std::vector<const ShardedCcf::WriteBuffer*> ShardedCcf::LoadOverlays() const {
  // Caller holds an epoch pin (same contract as LoadBases): a loaded block
  // cannot be reclaimed until the pin dies, and rows published before the
  // load are visible via the block's release/acquire size protocol.
  std::vector<const WriteBuffer*> overlays(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    const WriteBuffer* p =
        shards_[s]->pending.load(std::memory_order_seq_cst);
    overlays[s] = (p != nullptr && p->size() > 0) ? p : nullptr;
  }
  return overlays;
}

bool ShardedCcf::ResolveKeyWithOps(const CcfBase* base,
                                   const WriteBuffer* overlay, uint64_t key,
                                   const Predicate* pred) const {
  // Staged records first: the op-aware overlay probe answers true iff a
  // staged insert of the key survives every later-staged erase (and, with a
  // predicate, matches it).
  if (pred ? overlay->Contains(key, *pred) : overlay->ContainsKey(key)) {
    return true;
  }
  // Committed rows, with staged tombstones applied as exclusions. The
  // excluded set is computed from EXACT key matches over the published
  // records, so only classes the caller's key legitimately erased can be
  // hidden — a fingerprint-colliding key never inherits an exclusion.
  size_t n = overlay->size();
  std::vector<uint64_t> excluded;
  for (size_t i = 0; i < n; ++i) {
    if (overlay->op(i) == WriteBuffer::kOpErase && overlay->key(i) == key) {
      excluded.push_back(overlay->payload(i));
    }
  }
  if (excluded.empty()) {
    return pred ? base->Contains(key, *pred) : base->ContainsKey(key);
  }
  uint64_t bucket;
  uint32_t fp;
  cuckoo_addressing::IndexAndFingerprintFromHash(
      base->hasher().Hash(key, 0), base->table().bucket_mask(),
      base->config().key_fp_bits, &bucket, &fp);
  return pred ? base->ContainsAddressedExcluding(bucket, fp, *pred, excluded)
              : base->ContainsKeyAddressedExcluding(bucket, fp, excluded);
}

// --- Node-routed broadcast lookups (the SPSC handoff path) ------------------

/// One shard-group resolution job. Lives on the CALLER'S stack for the
/// duration of the broadcast (the caller spins on `remaining` before
/// returning), so rings carry plain pointers and nothing is allocated on
/// the handoff path. The caller's epoch pins cover the workers: a worker
/// only dereferences snapshot/overlay pointers the caller loaded under its
/// own PinAll guards, and the caller cannot drop those guards until every
/// task completes.
struct ShardedCcf::LookupTask {
  const ShardedCcf* self;
  const CcfBase* const* bases;          // indexed by shard
  const WriteBuffer* const* overlays;   // indexed by shard
  const std::vector<std::vector<uint64_t>>* shard_keys;
  const std::vector<std::vector<size_t>>* shard_pos;
  const Predicate* pred;  // null = key-only
  bool* out;
  /// The shard indices this task resolves (all on the worker's node).
  std::vector<uint32_t> shards;
  /// Per-shard status slots (disjoint writes; aggregated by the caller
  /// after the wait).
  Status* shard_status;
  /// Completion: the worker fetch_sub(release)s once the task's every
  /// shard (and status slot) is written; the caller acquire-spins to zero,
  /// which makes those writes visible before it reads them.
  std::atomic<uint32_t>* remaining;
};

/// A node's lookup worker: SPSC ring + the producer-side mutex that folds
/// many querying threads into the ring's single-producer contract + the
/// pinned thread.
struct ShardedCcf::NodeWorker {
  explicit NodeWorker(size_t ring_capacity) : ring(ring_capacity) {}
  SpscRing<LookupTask*> ring;
  std::mutex producer_mu;
  std::thread thread;
};

Status ShardedCcf::ResolveShardBroadcast(const CcfBase* base,
                                         const WriteBuffer* overlay,
                                         std::span<const uint64_t> keys,
                                         std::span<const size_t> pos,
                                         const Predicate* pred,
                                         bool* out) const {
  const size_t n = keys.size();
  if (n == 0) return Status::OK();
  if (overlay != nullptr && overlay->num_erases() > 0) {
    // Staged tombstones may hide this shard's committed rows: resolve each
    // key exactly (the batch fast path cannot apply exclusions).
    for (size_t j = 0; j < n; ++j) {
      out[pos[j]] = ResolveKeyWithOps(base, overlay, keys[j], pred);
    }
    return Status::OK();
  }
  std::unique_ptr<bool[]> shard_out(new bool[n]);
  if (pred != nullptr) {
    CCF_RETURN_NOT_OK(base->LookupBatch(keys,
                                        std::span<const Predicate>(pred, 1),
                                        std::span<bool>(shard_out.get(), n)));
  } else {
    base->ContainsKeyBatch(keys, std::span<bool>(shard_out.get(), n));
  }
  for (size_t j = 0; j < n; ++j) {
    bool hit = shard_out[j];
    if (!hit && overlay != nullptr) {
      hit = pred != nullptr ? overlay->Contains(keys[j], *pred)
                            : overlay->ContainsKey(keys[j]);
    }
    out[pos[j]] = hit;
  }
  return Status::OK();
}

Status ShardedCcf::RoutedBroadcast(std::span<const CcfBase* const> bases,
                                   std::span<const WriteBuffer* const> overlays,
                                   std::span<const uint64_t> keys,
                                   const Predicate* pred, bool* out) const {
  const size_t num_shards = shards_.size();
  const size_t num_nodes = domains_.size();
  const int wpn = options_.lookup_workers_per_node;

  // Gather keys per shard (same L1-resident pass as the sync route), then
  // group the non-empty shards by owning node.
  std::vector<std::vector<uint64_t>> shard_keys(num_shards);
  std::vector<std::vector<size_t>> shard_pos(num_shards);
  size_t expect = keys.size() / num_shards + 16;
  for (auto& v : shard_keys) v.reserve(expect);
  for (auto& v : shard_pos) v.reserve(expect);
  for (size_t i = 0; i < keys.size(); ++i) {
    size_t s = ShardOf(keys[i]);
    shard_keys[s].push_back(keys[i]);
    shard_pos[s].push_back(i);
  }
  std::vector<std::vector<uint32_t>> node_shards(num_nodes);
  for (size_t s = 0; s < num_shards; ++s) {
    if (shard_keys[s].empty()) continue;
    node_shards[static_cast<size_t>(shards_[s]->node)].push_back(
        static_cast<uint32_t>(s));
  }

  // The caller keeps its own node's shards (no handoff beats any handoff
  // for node-local work) plus anything that cannot ship below.
  const size_t caller_node = static_cast<size_t>(std::min(
      CurrentNode(*topo_), static_cast<int>(num_nodes) - 1));
  std::vector<uint32_t> inline_shards = node_shards[caller_node];

  std::vector<Status> shard_status(num_shards);
  std::atomic<uint32_t> remaining{0};

  // One task per (remote node, worker) slice, built COMPLETELY before the
  // first push — tasks live in this vector and rings hold pointers into
  // it, so no reallocation may follow a push.
  std::vector<LookupTask> tasks;
  std::vector<NodeWorker*> task_worker;
  tasks.reserve(num_nodes * static_cast<size_t>(wpn));
  task_worker.reserve(num_nodes * static_cast<size_t>(wpn));
  for (size_t node = 0; node < num_nodes; ++node) {
    if (node == caller_node || node_shards[node].empty()) continue;
    for (int w = 0; w < wpn; ++w) {
      // Worker w takes shards w, w+wpn, ... of its node's group.
      std::vector<uint32_t> slice;
      for (size_t i = static_cast<size_t>(w); i < node_shards[node].size();
           i += static_cast<size_t>(wpn)) {
        slice.push_back(node_shards[node][i]);
      }
      if (slice.empty()) continue;
      tasks.push_back(LookupTask{this, bases.data(), overlays.data(),
                                 &shard_keys, &shard_pos, pred, out,
                                 std::move(slice), shard_status.data(),
                                 &remaining});
      task_worker.push_back(
          workers_[node * static_cast<size_t>(wpn) + static_cast<size_t>(w)]
              .get());
    }
  }

  // Ship the tasks; a full ring (or any push failure) degrades that task
  // to inline resolution — backpressure never blocks the caller.
  for (size_t t = 0; t < tasks.size(); ++t) {
    remaining.fetch_add(1, std::memory_order_relaxed);
    bool pushed;
    {
      std::lock_guard<std::mutex> lock(task_worker[t]->producer_mu);
      pushed = task_worker[t]->ring.TryPush(&tasks[t]);
    }
    if (!pushed) {
      remaining.fetch_sub(1, std::memory_order_relaxed);
      inline_shards.insert(inline_shards.end(), tasks[t].shards.begin(),
                           tasks[t].shards.end());
    }
  }

  // Resolve the caller's share while the workers run theirs.
  for (uint32_t s : inline_shards) {
    shard_status[s] = ResolveShardBroadcast(bases[s], overlays[s],
                                            shard_keys[s], shard_pos[s],
                                            pred, out);
  }

  // Wait for the shipped tasks; the acquire pairs with each worker's
  // release fetch_sub, publishing its out/status writes.
  while (remaining.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }

  return AggregateShardStatus(shard_status);
}

void ShardedCcf::StartWorkers() {
  const int wpn = options_.lookup_workers_per_node;
  const size_t num_nodes = domains_.size();
  workers_.reserve(num_nodes * static_cast<size_t>(wpn));
  // All rings exist before any thread starts, so a racing RoutedBroadcast
  // can never index a half-built worker table. Ring capacity bounds
  // outstanding tasks per worker; overflow degrades to inline resolution.
  for (size_t node = 0; node < num_nodes; ++node) {
    for (int w = 0; w < wpn; ++w) {
      workers_.push_back(std::make_unique<NodeWorker>(/*ring_capacity=*/64));
    }
  }
  for (size_t node = 0; node < num_nodes; ++node) {
    for (int w = 0; w < wpn; ++w) {
      NodeWorker* worker =
          workers_[node * static_cast<size_t>(wpn) + static_cast<size_t>(w)]
              .get();
      worker->thread = std::thread(
          [this, node, worker] { WorkerLoop(static_cast<int>(node), worker); });
    }
  }
}

void ShardedCcf::StopWorkers() {
  if (workers_.empty()) return;
  workers_stop_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  workers_.clear();
}

void ShardedCcf::WorkerLoop(int node, NodeWorker* worker) {
  PinThreadToNode(*topo_, node).ok();
  int idle = 0;
  for (;;) {
    LookupTask* task = nullptr;
    if (worker->ring.TryPop(&task)) {
      idle = 0;
      for (uint32_t s : task->shards) {
        task->shard_status[s] = ResolveShardBroadcast(
            task->bases[s], task->overlays[s], (*task->shard_keys)[s],
            (*task->shard_pos)[s], task->pred, task->out);
      }
      // Release-publish every out/status write of this task, then signal.
      task->remaining->fetch_sub(1, std::memory_order_release);
      continue;
    }
    // Drain-then-stop: the stop flag is only honored on an EMPTY ring, so
    // every pushed task is resolved before the thread exits (the caller of
    // a task is spinning on its completion counter).
    if (workers_stop_.load(std::memory_order_acquire)) return;
    ++idle;
    if (idle < 64) {
      // brief spin: another task in the same batch is likely in flight
    } else if (idle < 1024) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

bool ShardedCcf::ContainsKey(uint64_t key) const {
  const Shard& shard = *shards_[ShardOf(key)];
  // Scalar reads pin only the target shard's domain — under the NUMA
  // policy that keeps the pin/unpin cache traffic on the shard's node.
  EpochDomain::Guard guard = shard.handle.domain()->Pin();
  // Staged-but-uncommitted rows answer through the exact overlay, so a
  // BufferWrite is visible the moment it returns (Insert→Contains holds
  // across the whole write cycle). Load order is the REVERSE of the
  // writer's commit order (publish table, THEN drop overlay; both
  // seq_cst): grab the overlay pointer BEFORE the table pointer, so an
  // overlay observed already-dropped implies the table load sees the
  // committed rows — a reader straddling a commit finds the row in one
  // place or the other, never neither. (Probe order is free; only the
  // pointer LOAD order matters, and a pinned overlay block keeps its rows
  // even after being swapped out.)
  const WriteBuffer* p = shard.pending.load(std::memory_order_seq_cst);
  const auto* base =
      static_cast<const CcfBase*>(shard.handle.Load(guard));
  if (p == nullptr) return base->ContainsKey(key);
  if (p->size() > 0 && p->num_erases() > 0) {
    // Staged tombstones may hide committed rows: take the exact slow path.
    return ResolveKeyWithOps(base, p, key, nullptr);
  }
  return base->ContainsKey(key) || p->ContainsKey(key);
}

bool ShardedCcf::Contains(uint64_t key, const Predicate& pred) const {
  const Shard& shard = *shards_[ShardOf(key)];
  EpochDomain::Guard guard = shard.handle.domain()->Pin();
  // Overlay pointer loaded before the table pointer — see ContainsKey.
  const WriteBuffer* p = shard.pending.load(std::memory_order_seq_cst);
  const auto* base =
      static_cast<const CcfBase*>(shard.handle.Load(guard));
  if (p == nullptr) return base->Contains(key, pred);
  if (p->size() > 0 && p->num_erases() > 0) {
    return ResolveKeyWithOps(base, p, key, &pred);
  }
  return base->Contains(key, pred) || p->Contains(key, pred);
}

Status ShardedCcf::LookupBatch(std::span<const uint64_t> keys,
                               std::span<const Predicate> preds,
                               std::span<bool> out) const {
  CCF_RETURN_NOT_OK(
      ValidateLookupBatchShape(keys.size(), preds.size(), out.size()));

  // One pin per domain + one snapshot load per shard for the WHOLE batch:
  // the loaded pointers stay valid until the guards die, however many
  // resizes publish in the meantime. The pending overlays are bound the
  // same way (one load per shard; rows staged after the load surface in
  // the next batch) and MUST be loaded before the table snapshots — the
  // reverse of the writer's publish-table-then-drop-overlay commit order —
  // so a batch straddling a commit finds each row in the overlay or the
  // table, never neither (see ContainsKey).
  std::vector<EpochDomain::Guard> guards = PinAll();
  std::vector<const WriteBuffer*> overlays = LoadOverlays();
  std::vector<const CcfBase*> bases = LoadBases(guards);

  if (preds.size() == 1) {
    // Broadcast: with node workers running, ship each remote node's shard
    // groups over the SPSC rings; otherwise gather keys per shard and
    // delegate to each shard's own batch hot path (which prefetches and
    // compiles the predicate once) on this thread, then scatter the
    // answers back. Both routes resolve through ResolveShardBroadcast, so
    // they are bit-identical.
    if (!workers_.empty()) {
      return RoutedBroadcast(bases, overlays, keys, &preds[0], out.data());
    }
    std::vector<std::vector<uint64_t>> shard_keys(shards_.size());
    std::vector<std::vector<size_t>> shard_pos(shards_.size());
    size_t expect = keys.size() / shards_.size() + 16;
    for (auto& v : shard_keys) v.reserve(expect);
    for (auto& v : shard_pos) v.reserve(expect);
    for (size_t i = 0; i < keys.size(); ++i) {
      size_t s = ShardOf(keys[i]);
      shard_keys[s].push_back(keys[i]);
      shard_pos[s].push_back(i);
    }
    for (size_t s = 0; s < shards_.size(); ++s) {
      CCF_RETURN_NOT_OK(ResolveShardBroadcast(bases[s], overlays[s],
                                              shard_keys[s], shard_pos[s],
                                              &preds[0], out.data()));
    }
    return Status::OK();
  }

  // Per-key predicates: resolve in place through the shared skeleton.
  ShardedTwoPass(*this, bases, keys,
                 [&](size_t i, size_t s, uint64_t bucket, uint32_t fp) {
                   const WriteBuffer* overlay = overlays[s];
                   if (overlay != nullptr && overlay->num_erases() > 0) {
                     out[i] = ResolveKeyWithOps(bases[s], overlay, keys[i],
                                                &preds[i]);
                     return;
                   }
                   out[i] = bases[s]->ContainsAddressed(bucket, fp,
                                                        preds[i]) ||
                            (overlay != nullptr &&
                             overlay->Contains(keys[i], preds[i]));
                 });
  return Status::OK();
}

void ShardedCcf::ContainsKeyBatch(std::span<const uint64_t> keys,
                                  std::span<bool> out) const {
  CCF_DCHECK(out.size() == keys.size());
  std::vector<EpochDomain::Guard> guards = PinAll();
  // Overlays before tables — the commit-straddling order (see ContainsKey).
  std::vector<const WriteBuffer*> overlays = LoadOverlays();
  std::vector<const CcfBase*> bases = LoadBases(guards);
  if (!workers_.empty()) {
    // Node-routed resolution (bit-identical; see LookupBatch). Key-only
    // probes produce no per-shard Status, so the aggregate is always OK.
    RoutedBroadcast(bases, overlays, keys, nullptr, out.data()).ok();
    return;
  }
  ShardedTwoPass(*this, bases, keys,
                 [&](size_t i, size_t s, uint64_t bucket, uint32_t fp) {
                   const WriteBuffer* overlay = overlays[s];
                   if (overlay != nullptr && overlay->num_erases() > 0) {
                     out[i] = ResolveKeyWithOps(bases[s], overlay, keys[i],
                                                nullptr);
                     return;
                   }
                   out[i] = bases[s]->ContainsKeyAddressed(bucket, fp) ||
                            (overlay != nullptr &&
                             overlay->ContainsKey(keys[i]));
                 });
}

Result<std::unique_ptr<KeyFilter>> ShardedCcf::PredicateQuery(
    const Predicate& pred) const {
  std::vector<EpochDomain::Guard> guards = PinAll();
  std::vector<std::unique_ptr<KeyFilter>> derived;
  derived.reserve(shards_.size());
  for (const auto& shard : shards_) {
    CCF_ASSIGN_OR_RETURN(
        std::unique_ptr<KeyFilter> kf,
        shard->handle.Load(guards[static_cast<size_t>(shard->node)])
            ->PredicateQuery(pred));
    derived.push_back(std::move(kf));
  }
  return std::unique_ptr<KeyFilter>(new ShardedKeyFilter(
      std::move(derived), shard_hasher_, shard_mask_));
}

uint64_t ShardedCcf::SizeInBits() const {
  std::vector<EpochDomain::Guard> guards = PinAll();
  uint64_t bits = 0;
  for (const auto& s : shards_) {
    bits +=
        s->handle.Load(guards[static_cast<size_t>(s->node)])->SizeInBits();
  }
  return bits;
}

double ShardedCcf::LoadFactor() const {
  // Shards may diverge in geometry after per-shard resizes, so weight by
  // slot count (identical to the shard mean while geometry is uniform).
  std::vector<EpochDomain::Guard> guards = PinAll();
  uint64_t occupied = 0, slots = 0;
  for (const auto& s : shards_) {
    const auto* base = static_cast<const CcfBase*>(
        s->handle.Load(guards[static_cast<size_t>(s->node)]));
    occupied += base->num_entries();
    slots += base->table().num_slots();
  }
  return slots == 0 ? 0.0
                    : static_cast<double>(occupied) /
                          static_cast<double>(slots);
}

uint64_t ShardedCcf::num_entries() const {
  std::vector<EpochDomain::Guard> guards = PinAll();
  uint64_t n = 0;
  for (const auto& s : shards_) {
    n += s->handle.Load(guards[static_cast<size_t>(s->node)])->num_entries();
  }
  return n;
}

uint64_t ShardedCcf::num_rows() const {
  std::vector<EpochDomain::Guard> guards = PinAll();
  uint64_t n = 0;
  for (const auto& s : shards_) {
    n += s->handle.Load(guards[static_cast<size_t>(s->node)])->num_rows();
  }
  return n;
}

std::string ShardedCcf::Serialize() const {
  std::vector<EpochDomain::Guard> guards = PinAll();
  std::string out;
  ByteWriter writer(&out);
  writer.WriteU32(kShardedMagic);
  writer.WriteU32(static_cast<uint32_t>(shards_.size()));
  writer.WriteU32(static_cast<uint32_t>(options_.build_threads));
  for (const auto& s : shards_) {
    // Align so each shard blob starts 8-byte aligned after WriteBytes'
    // 8-byte length prefix — inner word arrays then stay aligned from the
    // CONTAINER start, which is what alias-mode loads check.
    writer.AlignTo(8);
    writer.WriteBytes(
        s->handle.Load(guards[static_cast<size_t>(s->node)])->Serialize());
  }
  return out;
}

Result<std::unique_ptr<ConditionalCuckooFilter>> ShardedCcf::Deserialize(
    std::string_view data, const AliasMapping* alias) {
  ByteReader reader(data);
  CCF_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kShardedMagic) {
    if (magic == 0x53434631 /* "SCF1", the retired unaligned layout */) {
      return Status::Invalid(
          "blob uses the retired v1 (SCF1, unaligned) ShardedCcf format; "
          "re-serialize it with this version to load it");
    }
    return Status::Invalid("not a serialized ShardedCcf");
  }
  CCF_ASSIGN_OR_RETURN(uint32_t num_shards, reader.ReadU32());
  if (num_shards < 1 || num_shards > 4096 ||
      (num_shards & (num_shards - 1)) != 0) {
    return Status::Invalid("serialized ShardedCcf has invalid shard count");
  }
  CCF_ASSIGN_OR_RETURN(uint32_t build_threads, reader.ReadU32());
  std::vector<std::unique_ptr<ConditionalCuckooFilter>> shards;
  shards.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    CCF_RETURN_NOT_OK(reader.AlignTo(8));
    CCF_ASSIGN_OR_RETURN(std::string_view blob, reader.ReadBytes());
    // Shard blobs must be plain variants: a nested sharded blob would
    // recurse unboundedly on crafted input, and the hot path downcasts
    // shards to CcfBase.
    if (blob.size() >= 4) {
      uint32_t shard_magic;
      std::memcpy(&shard_magic, blob.data(), 4);
      if (shard_magic == kShardedMagic) {
        return Status::Invalid("nested sharded CCF blobs are not supported");
      }
    }
    CCF_ASSIGN_OR_RETURN(
        std::unique_ptr<ConditionalCuckooFilter> shard,
        alias == nullptr ? ConditionalCuckooFilter::Deserialize(blob)
                         : ConditionalCuckooFilter::Deserialize(blob, *alias));
    // The batched hot path computes one raw key hash with shard 0's hasher
    // and re-masks it per shard, so salts and slot/fingerprint shapes must
    // agree; bucket COUNTS may differ (per-shard resizes grow shards
    // independently).
    if (!shards.empty()) {
      const CcfConfig& a = shards.front()->config();
      const CcfConfig& b = shard->config();
      if (shard->variant() != shards.front()->variant() ||
          b.salt != a.salt ||
          b.slots_per_bucket != a.slots_per_bucket ||
          b.key_fp_bits != a.key_fp_bits) {
        return Status::Invalid(
            "sharded CCF blob has non-uniform shard variant/geometry");
      }
    }
    shards.push_back(std::move(shard));
  }
  ShardedCcfOptions opts;
  opts.num_shards = static_cast<int>(num_shards);
  opts.build_threads = static_cast<int>(build_threads);
  // Deserialized tables were loaded wherever the reader ran, so page
  // binding is moot — but per-node epoch domains and node-pinned workers
  // still apply under an active policy.
  std::shared_ptr<const NumaTopology> topo = SystemTopology();
  const bool numa_active =
      opts.numa_policy == NumaPolicy::kForce ||
      (opts.numa_policy == NumaPolicy::kAuto && topo->num_nodes > 1);
  auto sharded = std::unique_ptr<ShardedCcf>(new ShardedCcf(
      std::move(shards), opts, std::move(topo), numa_active));
  // Serialized blobs carry tables, not rows: the restored filter serves and
  // accepts writes but cannot rebuild a shard from a log it never had.
  sharded->resizable_ = false;
  return std::unique_ptr<ConditionalCuckooFilter>(std::move(sharded));
}

}  // namespace ccf
