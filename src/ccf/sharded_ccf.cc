#include "ccf/sharded_ccf.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>

#include "cuckoo/cuckoo_filter.h"
#include "util/batch_pipeline.h"
#include "util/math_util.h"

namespace ccf {

namespace {

constexpr uint32_t kShardedMagic = ShardedCcf::kMagic;

// Salt stream for shard routing; must stay uncorrelated with the in-shard
// addressing hash (Hash(key, 0) under config.salt), which the distinct salt
// guarantees.
constexpr uint64_t kShardSaltMix = 0x517cc1b727220a95ull;

/// \brief Key filter over per-shard derived filters, routed like the source.
class ShardedKeyFilter : public KeyFilter {
 public:
  ShardedKeyFilter(std::vector<std::unique_ptr<KeyFilter>> shards,
                   Hasher shard_hasher, uint64_t shard_mask)
      : shards_(std::move(shards)),
        shard_hasher_(shard_hasher),
        shard_mask_(shard_mask) {}

  bool Contains(uint64_t key) const override {
    return shards_[shard_hasher_.Hash(key, 0) & shard_mask_]->Contains(key);
  }

  void ContainsBatch(std::span<const uint64_t> keys,
                     std::span<bool> out) const override {
    // Gather per shard, delegate to each derived filter's own batched
    // (prefetched) path, scatter back — mirroring ShardedCcf::LookupBatch.
    CCF_DCHECK(out.size() == keys.size());
    std::vector<std::vector<uint64_t>> shard_keys(shards_.size());
    std::vector<std::vector<size_t>> shard_pos(shards_.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      size_t s = shard_hasher_.Hash(keys[i], 0) & shard_mask_;
      shard_keys[s].push_back(keys[i]);
      shard_pos[s].push_back(i);
    }
    std::unique_ptr<bool[]> shard_out;
    size_t cap = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      size_t n = shard_keys[s].size();
      if (n == 0) continue;
      if (n > cap) {
        shard_out.reset(new bool[n]);
        cap = n;
      }
      shards_[s]->ContainsBatch(shard_keys[s],
                                std::span<bool>(shard_out.get(), n));
      for (size_t j = 0; j < n; ++j) out[shard_pos[s][j]] = shard_out[j];
    }
  }

  uint64_t SizeInBits() const override {
    uint64_t bits = 0;
    for (const auto& s : shards_) bits += s->SizeInBits();
    return bits;
  }

 private:
  std::vector<std::unique_ptr<KeyFilter>> shards_;
  Hasher shard_hasher_;
  uint64_t shard_mask_;
};

}  // namespace

ShardedCcf::ShardedCcf(
    std::vector<std::unique_ptr<ConditionalCuckooFilter>> shards,
    ShardedCcfOptions options)
    : shards_(std::move(shards)),
      options_(options),
      shard_mask_(shards_.size() - 1),
      shard_hasher_(shards_[0]->config().salt ^ kShardSaltMix) {
  bases_.reserve(shards_.size());
  for (const auto& s : shards_) {
    bases_.push_back(static_cast<const CcfBase*>(s.get()));
  }
}

Result<std::unique_ptr<ShardedCcf>> ShardedCcf::Make(
    CcfVariant variant, const CcfConfig& config,
    const ShardedCcfOptions& options) {
  if (options.num_shards < 1 || options.num_shards > 4096) {
    return Status::Invalid("num_shards must be in [1, 4096]");
  }
  ShardedCcfOptions opts = options;
  opts.num_shards = static_cast<int>(
      NextPowerOfTwo(static_cast<uint64_t>(options.num_shards)));

  CcfConfig shard_config = config;
  shard_config.num_buckets =
      std::max<uint64_t>(1, config.num_buckets /
                                static_cast<uint64_t>(opts.num_shards));
  std::vector<std::unique_ptr<ConditionalCuckooFilter>> shards;
  shards.reserve(static_cast<size_t>(opts.num_shards));
  for (int i = 0; i < opts.num_shards; ++i) {
    CCF_ASSIGN_OR_RETURN(std::unique_ptr<ConditionalCuckooFilter> shard,
                         ConditionalCuckooFilter::Make(variant, shard_config));
    shards.push_back(std::move(shard));
  }
  return std::unique_ptr<ShardedCcf>(
      new ShardedCcf(std::move(shards), opts));
}

Status ShardedCcf::Insert(uint64_t key, std::span<const uint64_t> attrs) {
  return shards_[ShardOf(key)]->Insert(key, attrs);
}

Status ShardedCcf::InsertParallel(std::span<const uint64_t> keys,
                                  std::span<const uint64_t> attrs,
                                  int num_threads,
                                  std::vector<uint64_t>* hash_memo) {
  const size_t num_attrs = static_cast<size_t>(config().num_attrs);
  if (attrs.size() != keys.size() * num_attrs) {
    return Status::Invalid(
        "InsertParallel: attrs must hold keys.size() * num_attrs values");
  }
  if (hash_memo != nullptr && !hash_memo->empty() &&
      hash_memo->size() != 2 * keys.size()) {
    return Status::Invalid(
        "InsertParallel: hash_memo must be empty or hold two words per key");
  }
  const bool reuse_memo = hash_memo != nullptr && !hash_memo->empty();
  const bool fill_memo = hash_memo != nullptr && !reuse_memo;

  // Gather contiguous per-shard rows (insertion order preserved per shard)
  // so each shard's whole build is one batched InsertBatch over its slice —
  // the write-side analogue of the batched lookup's gather/delegate path.
  const size_t num_shards = shards_.size();
  std::vector<std::vector<uint64_t>> shard_keys(num_shards);
  std::vector<std::vector<uint64_t>> shard_attrs(num_shards);
  std::vector<std::vector<uint64_t>> shard_hashes(num_shards);
  std::vector<std::vector<size_t>> shard_pos(fill_memo ? num_shards : 0);
  size_t expect = keys.size() / num_shards + 16;
  for (auto& v : shard_keys) v.reserve(expect);
  for (auto& v : shard_attrs) v.reserve(expect * num_attrs);
  for (size_t i = 0; i < keys.size(); ++i) {
    size_t s = ShardOf(keys[i]);
    shard_keys[s].push_back(keys[i]);
    shard_attrs[s].insert(shard_attrs[s].end(),
                          attrs.begin() + static_cast<ptrdiff_t>(i * num_attrs),
                          attrs.begin() +
                              static_cast<ptrdiff_t>((i + 1) * num_attrs));
    if (reuse_memo) {
      shard_hashes[s].push_back((*hash_memo)[2 * i]);
      shard_hashes[s].push_back((*hash_memo)[2 * i + 1]);
    }
    if (fill_memo) shard_pos[s].push_back(i);
  }

  int threads = num_threads > 0 ? num_threads : options_.build_threads;
  if (threads <= 0) threads = static_cast<int>(num_shards);
  threads = std::min<int>(threads, static_cast<int>(num_shards));

  Status first_error = Status::OK();
  std::mutex error_mu;
  auto build_stripe = [&](int t) {
    for (size_t s = static_cast<size_t>(t); s < num_shards;
         s += static_cast<size_t>(threads)) {
      // Each thread owns its stripe's shards and hash vectors outright, so
      // no locks are needed.
      Status st = shards_[s]->InsertBatch(
          shard_keys[s], shard_attrs[s],
          hash_memo != nullptr ? &shard_hashes[s] : nullptr);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) first_error = std::move(st);
      }
    }
  };

  if (threads <= 1) {
    build_stripe(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) workers.emplace_back(build_stripe, t);
    for (auto& w : workers) w.join();
  }

  if (fill_memo) {
    // Scatter the per-shard memo words back to input order so the caller's
    // memo is shard-layout-agnostic (and reusable by an unsharded rebuild
    // too).
    hash_memo->resize(2 * keys.size());
    for (size_t s = 0; s < num_shards; ++s) {
      for (size_t j = 0; j < shard_pos[s].size(); ++j) {
        (*hash_memo)[2 * shard_pos[s][j]] = shard_hashes[s][2 * j];
        (*hash_memo)[2 * shard_pos[s][j] + 1] = shard_hashes[s][2 * j + 1];
      }
    }
  }
  return first_error;
}

Status ShardedCcf::InsertBatch(std::span<const uint64_t> keys,
                               std::span<const uint64_t> attrs,
                               std::vector<uint64_t>* hash_memo) {
  return InsertParallel(keys, attrs, /*num_threads=*/0, hash_memo);
}

bool ShardedCcf::ContainsKey(uint64_t key) const {
  return shards_[ShardOf(key)]->ContainsKey(key);
}

bool ShardedCcf::Contains(uint64_t key, const Predicate& pred) const {
  return shards_[ShardOf(key)]->Contains(key, pred);
}

namespace {

// Shared two-pass skeleton over the shard set, instantiating the
// library-wide batch pipeline: pass 1 computes each key's shard and
// (bucket, fp) with shard 0's hasher (all shards share salt and geometry,
// so one address computation serves whichever shard the key routes to);
// the block is radix-clustered by (shard, bucket) so same-shard probes of
// nearby buckets resolve back-to-back, then both buckets of each pair are
// prefetched in the target shard and resolve(index, shard, bucket, fp)
// runs with the lines (likely) cached.
template <typename Resolver>
void ShardedTwoPass(const ShardedCcf& self,
                    const std::vector<const CcfBase*>& bases,
                    std::span<const uint64_t> keys, Resolver&& resolve) {
  const CcfBase& rep = *bases[0];
  const uint64_t bucket_mask = rep.table().bucket_mask();
  const int bucket_bits = std::bit_width(bucket_mask);
  const int fp_bits = rep.config().key_fp_bits;
  struct Addr {
    uint64_t cluster_key;
    uint64_t bucket;
    uint64_t alt;
    uint32_t shard;
    uint32_t fp;
  };
  BatchPipelineOptions options;
  options.cluster_bits =
      bucket_bits +
      std::bit_width(static_cast<uint64_t>(self.num_shards() - 1));
  RunBatchPipeline<Addr>(
      keys.size(), options,
      [&](size_t i) {
        Addr a;
        uint64_t key = keys[i];
        a.shard = static_cast<uint32_t>(self.ShardOf(key));
        cuckoo_addressing::IndexAndFingerprint(rep.hasher(), key, bucket_mask,
                                               fp_bits, &a.bucket, &a.fp);
        a.alt = cuckoo_addressing::AltBucket(rep.hasher(), a.bucket, a.fp,
                                             bucket_mask);
        a.cluster_key =
            (static_cast<uint64_t>(a.shard) << bucket_bits) | a.bucket;
        return a;
      },
      [&](const Addr& a) {
        const BucketTable& table = bases[a.shard]->table();
        table.PrefetchBucket(a.bucket);
        if (a.alt != a.bucket) table.PrefetchBucket(a.alt);
      },
      [&](size_t i, const Addr& a) { resolve(i, a.shard, a.bucket, a.fp); });
}

}  // namespace

Status ShardedCcf::LookupBatch(std::span<const uint64_t> keys,
                               std::span<const Predicate> preds,
                               std::span<bool> out) const {
  CCF_RETURN_NOT_OK(
      ValidateLookupBatchShape(keys.size(), preds.size(), out.size()));

  if (preds.size() == 1) {
    // Broadcast: gather keys per shard and delegate to each shard's own
    // batch hot path (which prefetches and compiles the predicate once),
    // then scatter the answers back. The gather/scatter passes are pure
    // L1-resident index work — far cheaper than the per-key rehash the
    // generic route would pay.
    std::vector<std::vector<uint64_t>> shard_keys(shards_.size());
    std::vector<std::vector<size_t>> shard_pos(shards_.size());
    size_t expect = keys.size() / shards_.size() + 16;
    for (auto& v : shard_keys) v.reserve(expect);
    for (auto& v : shard_pos) v.reserve(expect);
    for (size_t i = 0; i < keys.size(); ++i) {
      size_t s = ShardOf(keys[i]);
      shard_keys[s].push_back(keys[i]);
      shard_pos[s].push_back(i);
    }
    std::unique_ptr<bool[]> shard_out;
    size_t cap = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      size_t n = shard_keys[s].size();
      if (n == 0) continue;
      if (n > cap) {
        shard_out.reset(new bool[n]);
        cap = n;
      }
      CCF_RETURN_NOT_OK(shards_[s]->LookupBatch(
          shard_keys[s], preds, std::span<bool>(shard_out.get(), n)));
      for (size_t j = 0; j < n; ++j) out[shard_pos[s][j]] = shard_out[j];
    }
    return Status::OK();
  }

  // Per-key predicates: resolve in place through the shared skeleton.
  ShardedTwoPass(*this, bases_, keys,
                 [&](size_t i, size_t s, uint64_t bucket, uint32_t fp) {
                   out[i] = bases_[s]->ContainsAddressed(bucket, fp,
                                                         preds[i]);
                 });
  return Status::OK();
}

void ShardedCcf::ContainsKeyBatch(std::span<const uint64_t> keys,
                                  std::span<bool> out) const {
  CCF_DCHECK(out.size() == keys.size());
  ShardedTwoPass(*this, bases_, keys,
                 [&](size_t i, size_t s, uint64_t bucket, uint32_t fp) {
                   out[i] = bases_[s]->ContainsKeyAddressed(bucket, fp);
                 });
}

Result<std::unique_ptr<KeyFilter>> ShardedCcf::PredicateQuery(
    const Predicate& pred) const {
  std::vector<std::unique_ptr<KeyFilter>> derived;
  derived.reserve(shards_.size());
  for (const auto& shard : shards_) {
    CCF_ASSIGN_OR_RETURN(std::unique_ptr<KeyFilter> kf,
                         shard->PredicateQuery(pred));
    derived.push_back(std::move(kf));
  }
  return std::unique_ptr<KeyFilter>(new ShardedKeyFilter(
      std::move(derived), shard_hasher_, shard_mask_));
}

uint64_t ShardedCcf::SizeInBits() const {
  uint64_t bits = 0;
  for (const auto& s : shards_) bits += s->SizeInBits();
  return bits;
}

double ShardedCcf::LoadFactor() const {
  // Shards share geometry, so the global load factor is the shard mean.
  double sum = 0;
  for (const auto& s : shards_) sum += s->LoadFactor();
  return sum / static_cast<double>(shards_.size());
}

uint64_t ShardedCcf::num_entries() const {
  uint64_t n = 0;
  for (const auto& s : shards_) n += s->num_entries();
  return n;
}

uint64_t ShardedCcf::num_rows() const {
  uint64_t n = 0;
  for (const auto& s : shards_) n += s->num_rows();
  return n;
}

const CcfConfig& ShardedCcf::config() const { return shards_[0]->config(); }

CcfVariant ShardedCcf::variant() const { return shards_[0]->variant(); }

std::string ShardedCcf::Serialize() const {
  std::string out;
  ByteWriter writer(&out);
  writer.WriteU32(kShardedMagic);
  writer.WriteU32(static_cast<uint32_t>(shards_.size()));
  writer.WriteU32(static_cast<uint32_t>(options_.build_threads));
  for (const auto& s : shards_) writer.WriteBytes(s->Serialize());
  return out;
}

Result<std::unique_ptr<ConditionalCuckooFilter>> ShardedCcf::Deserialize(
    std::string_view data) {
  ByteReader reader(data);
  CCF_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kShardedMagic) {
    return Status::Invalid("not a serialized ShardedCcf");
  }
  CCF_ASSIGN_OR_RETURN(uint32_t num_shards, reader.ReadU32());
  if (num_shards < 1 || num_shards > 4096 ||
      (num_shards & (num_shards - 1)) != 0) {
    return Status::Invalid("serialized ShardedCcf has invalid shard count");
  }
  CCF_ASSIGN_OR_RETURN(uint32_t build_threads, reader.ReadU32());
  std::vector<std::unique_ptr<ConditionalCuckooFilter>> shards;
  shards.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    CCF_ASSIGN_OR_RETURN(std::string_view blob, reader.ReadBytes());
    // Shard blobs must be plain variants: a nested sharded blob would
    // recurse unboundedly on crafted input, and the hot path downcasts
    // shards to CcfBase.
    if (blob.size() >= 4) {
      uint32_t shard_magic;
      std::memcpy(&shard_magic, blob.data(), 4);
      if (shard_magic == kShardedMagic) {
        return Status::Invalid("nested sharded CCF blobs are not supported");
      }
    }
    CCF_ASSIGN_OR_RETURN(std::unique_ptr<ConditionalCuckooFilter> shard,
                         ConditionalCuckooFilter::Deserialize(blob));
    // The batched hot path computes one address per key with shard 0's
    // hasher and geometry; every shard must agree or lookups would index
    // out of range / mis-route.
    if (!shards.empty()) {
      const CcfConfig& a = shards.front()->config();
      const CcfConfig& b = shard->config();
      if (shard->variant() != shards.front()->variant() ||
          b.num_buckets != a.num_buckets || b.salt != a.salt ||
          b.slots_per_bucket != a.slots_per_bucket ||
          b.key_fp_bits != a.key_fp_bits) {
        return Status::Invalid(
            "sharded CCF blob has non-uniform shard variant/geometry");
      }
    }
    shards.push_back(std::move(shard));
  }
  ShardedCcfOptions opts;
  opts.num_shards = static_cast<int>(num_shards);
  opts.build_threads = static_cast<int>(build_threads);
  return std::unique_ptr<ConditionalCuckooFilter>(
      new ShardedCcf(std::move(shards), opts));
}

}  // namespace ccf
