// Plain CCF: a cuckoo filter whose entries carry attribute fingerprint
// vectors (§5.1) with duplicate keys stored as extra entries in the bucket
// pair (§4.3's multiset extension). No chaining, no conversion — the
// failure-prone baseline whose collapse Figures 4 and the JOB-light "Plain"
// rows demonstrate.
#ifndef CCF_CCF_PLAIN_CCF_H_
#define CCF_CCF_PLAIN_CCF_H_

#include <memory>

#include "ccf/ccf_base.h"

namespace ccf {

/// \brief Fingerprint-vector CCF limited to one bucket pair per key.
class PlainCcf : public CcfBase {
 public:
  static Result<std::unique_ptr<ConditionalCuckooFilter>> Make(
      const CcfConfig& config);

  Status Insert(uint64_t key, std::span<const uint64_t> attrs) override;
  bool ContainsKey(uint64_t key) const override;
  bool Contains(uint64_t key, const Predicate& pred) const override;
  bool ContainsAddressed(uint64_t bucket, uint32_t fp,
                         const Predicate& pred) const override;
  bool ContainsAddressedExcluding(
      uint64_t bucket, uint32_t fp, const Predicate& pred,
      std::span<const uint64_t> excluded) const override;
  Result<std::unique_ptr<KeyFilter>> PredicateQuery(
      const Predicate& pred) const override;
  Result<std::unique_ptr<ConditionalCuckooFilter>> Clone() const override {
    auto copy = std::unique_ptr<PlainCcf>(new PlainCcf(*this));
    // The implicit copy leaves codec_ pointing at the SOURCE's hasher;
    // rebind so the clone stays valid after the source is epoch-freed.
    copy->codec_.RebindHasher(&copy->hasher_);
    return std::unique_ptr<ConditionalCuckooFilter>(std::move(copy));
  }
  CcfVariant variant() const override { return CcfVariant::kPlain; }

 protected:
  void LookupBatchBroadcast(std::span<const uint64_t> keys,
                            const Predicate& pred,
                            std::span<bool> out) const override;
  uint64_t PackRowPayload(std::span<const uint64_t> attrs) const override;
  bool TryInsertNoKick(const BucketPair& pair, uint32_t fp,
                       std::span<const uint64_t> attrs,
                       uint64_t payload) override;
  Status InsertAddressed(const BucketPair& pair, uint32_t fp,
                         std::span<const uint64_t> attrs) override;
  bool EraseRowAddressed(const BucketPair& pair, uint32_t fp,
                         uint64_t payload) override;

 private:
  PlainCcf(CcfConfig config, BucketTable table);

  AttrFingerprintCodec codec_;
};

}  // namespace ccf

#endif  // CCF_CCF_PLAIN_CCF_H_
