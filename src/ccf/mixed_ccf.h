// Mixed CCF (§6.1, "Bloom conversion"): entries start as attribute
// fingerprint vectors; once a bucket pair accumulates d copies of a key
// fingerprint, those d entries are converted in place into one Bloom filter
// packed across their payload windows. Conversion never fails, so the Mixed
// variant absorbs unbounded duplicates without chaining.
//
// Layout per slot payload:
//   bit 0                  mode (0 vector, 1 converted fragment)
//   bits [1, 1+seq_bits)   fragment sequence number (converted only)
//   bits [base, base+#α·|α|) fingerprint vector or Bloom fragment,
//                            base = 1 + seq_bits
//
// The sequence number makes the packed Bloom's bit order independent of
// slot positions, so converted fragments can be displaced by cuckoo kicks
// like any other entry (they still never leave their bucket pair, by the
// XOR involution). This costs ⌈log2 d⌉ bits per slot, comparable to the
// paper's 2(|κ| + ⌈log2 d⌉)-bit count fields, and avoids re-packing the
// Bloom filter on every kick.
#ifndef CCF_CCF_MIXED_CCF_H_
#define CCF_CCF_MIXED_CCF_H_

#include <memory>

#include "bloom/bloom_sketch.h"
#include "ccf/ccf_base.h"

namespace ccf {

/// \brief Fingerprint-vector CCF with in-place Bloom conversion at d
/// duplicates.
class MixedCcf : public CcfBase {
 public:
  static Result<std::unique_ptr<ConditionalCuckooFilter>> Make(
      const CcfConfig& config);

  Status Insert(uint64_t key, std::span<const uint64_t> attrs) override;
  bool ContainsKey(uint64_t key) const override;
  bool Contains(uint64_t key, const Predicate& pred) const override;
  bool ContainsAddressed(uint64_t bucket, uint32_t fp,
                         const Predicate& pred) const override;
  bool ContainsAddressedExcluding(
      uint64_t bucket, uint32_t fp, const Predicate& pred,
      std::span<const uint64_t> excluded) const override;
  Result<std::unique_ptr<KeyFilter>> PredicateQuery(
      const Predicate& pred) const override;
  Result<std::unique_ptr<ConditionalCuckooFilter>> Clone() const override {
    auto copy = std::unique_ptr<MixedCcf>(new MixedCcf(*this));
    // The implicit copy leaves codec_ pointing at the SOURCE's hasher;
    // rebind so the clone stays valid after the source is epoch-freed.
    copy->codec_.RebindHasher(&copy->hasher_);
    return std::unique_ptr<ConditionalCuckooFilter>(std::move(copy));
  }
  CcfVariant variant() const override { return CcfVariant::kMixed; }

  /// Number of vector→Bloom conversions performed (diagnostics).
  uint64_t num_conversions() const { return num_conversions_; }
  /// Bloom probes used by converted sketches (eq. 2 when
  /// optimize_bloom_hashes, else the fixed bloom_hashes setting).
  int conversion_hashes() const { return conversion_hashes_; }

 protected:
  void LookupBatchBroadcast(std::span<const uint64_t> keys,
                            const Predicate& pred,
                            std::span<bool> out) const override;
  uint64_t PackRowPayload(std::span<const uint64_t> attrs) const override;
  bool TryInsertNoKick(const BucketPair& pair, uint32_t fp,
                       std::span<const uint64_t> attrs,
                       uint64_t payload) override;
  Status InsertAddressed(const BucketPair& pair, uint32_t fp,
                         std::span<const uint64_t> attrs) override;
  bool EraseRowAddressed(const BucketPair& pair, uint32_t fp,
                         uint64_t payload) override;
  void SaveExtras(ByteWriter* writer) const override;
  Status LoadExtras(ByteReader* reader) override;

 private:
  MixedCcf(CcfConfig config, BucketTable table);

  bool IsConverted(uint64_t bucket, int slot) const {
    return table_->GetPayloadField(bucket, slot, 0, 1) != 0;
  }
  void SetConverted(uint64_t bucket, int slot, bool converted) {
    table_->SetPayloadField(bucket, slot, 0, 1, converted ? 1 : 0);
  }
  uint64_t SeqOf(uint64_t bucket, int slot) const {
    return seq_bits_ == 0 ? 0
                          : table_->GetPayloadField(bucket, slot, 1, seq_bits_);
  }
  void SetSeq(uint64_t bucket, int slot, uint64_t seq) {
    if (seq_bits_ > 0) table_->SetPayloadField(bucket, slot, 1, seq_bits_, seq);
  }

  /// Converted fragments of κ in the pair, ordered by sequence number (the
  /// stable order the packed Bloom bits were written in).
  std::vector<std::pair<uint64_t, int>> CanonicalFragments(
      const BucketPair& pair, uint32_t fp) const;

  /// Bloom view spanning the given fragment windows (in the given order).
  BloomSketchView FragmentSketch(
      const std::vector<std::pair<uint64_t, int>>& frags) const;

  /// Converts the d vector entries of κ into one packed Bloom filter and
  /// folds `attrs` (the (d+1)-th duplicate) into it. Never fails.
  void ConvertToBloom(const BucketPair& pair, uint32_t fp,
                      std::span<const uint64_t> attrs);

  void FoldRowIntoSketch(BloomSketchView* sketch,
                         std::span<const uint64_t> attrs) const;
  bool SketchMatches(const BloomSketchView& sketch,
                     const Predicate& pred) const;

  /// Contains resolution with a pluggable vector-entry matcher; converted
  /// keys fall back to the (rare) packed-sketch path, which always
  /// evaluates the raw predicate.
  template <typename EntryMatcher>
  bool ResolveAddressed(const BucketPair& pair, uint32_t fp,
                        const Predicate& pred,
                        EntryMatcher&& matches) const {
    bool any_converted = false;
    auto [count, matched] = ScanPairWithFp(
        pair, fp, [&](uint64_t b, int s) {
          if (IsConverted(b, s)) {
            any_converted = true;
            return false;
          }
          return matches(b, s);
        });
    (void)count;
    if (matched) return true;
    if (any_converted) {
      return SketchMatches(FragmentSketch(CanonicalFragments(pair, fp)),
                           pred);
    }
    return false;
  }

  AttrFingerprintCodec codec_;
  int seq_bits_;
  int vec_base_;  // payload offset of the vector / fragment window
  int vec_bits_;
  int conversion_hashes_;
  uint64_t num_conversions_ = 0;
};

}  // namespace ccf

#endif  // CCF_CCF_MIXED_CCF_H_
