// Matching a predicate against a stored attribute fingerprint vector: each
// conjunct must have some in-list value whose fingerprint equals the stored
// one (per-entry conjunction preserves co-occurrence, §5.2).
#ifndef CCF_CCF_ENTRY_MATCH_H_
#define CCF_CCF_ENTRY_MATCH_H_

#include "cuckoo/bucket_table.h"
#include "predicate/predicate.h"
#include "sketch/attr_fingerprint.h"

namespace ccf {

/// True if the fingerprint vector stored at (bucket, slot) — payload offset
/// `base` — satisfies every term of `pred`.
inline bool VectorEntryMatches(const BucketTable& table, uint64_t bucket,
                               int slot, int base,
                               const AttrFingerprintCodec& codec,
                               const Predicate& pred) {
  for (const AttributeTerm& term : pred.terms()) {
    uint32_t stored = codec.Load(table, bucket, slot, base, term.attr_index);
    bool any = false;
    for (uint64_t v : term.values) {
      if (codec.ValueFingerprint(v) == stored) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

}  // namespace ccf

#endif  // CCF_CCF_ENTRY_MATCH_H_
