// Matching a predicate against a stored attribute fingerprint vector: each
// conjunct must have some in-list value whose fingerprint equals the stored
// one (per-entry conjunction preserves co-occurrence, §5.2).
#ifndef CCF_CCF_ENTRY_MATCH_H_
#define CCF_CCF_ENTRY_MATCH_H_

#include "cuckoo/bucket_table.h"
#include "predicate/predicate.h"
#include "sketch/attr_fingerprint.h"

namespace ccf {

/// A predicate compiled against a codec: every term's in-list value
/// fingerprints are precomputed. The broadcast batch path compiles once per
/// batch instead of hashing the same predicate values once per candidate
/// entry — for a million-key probe that removes millions of redundant
/// hashes, which would otherwise dominate the prefetched resolution pass.
struct CompiledVectorPredicate {
  struct Term {
    int attr_index = 0;
    std::vector<uint32_t> fps;
  };
  std::vector<Term> terms;

  static CompiledVectorPredicate Compile(const AttrFingerprintCodec& codec,
                                         const Predicate& pred) {
    CompiledVectorPredicate out;
    out.terms.reserve(pred.terms().size());
    for (const AttributeTerm& term : pred.terms()) {
      Term t;
      t.attr_index = term.attr_index;
      t.fps.reserve(term.values.size());
      for (uint64_t v : term.values) {
        t.fps.push_back(codec.ValueFingerprint(v));
      }
      out.terms.push_back(std::move(t));
    }
    return out;
  }
};

/// VectorEntryMatches against precompiled term fingerprints; answers are
/// identical because matching only ever compares value fingerprints.
inline bool VectorEntryMatchesCompiled(const BucketTable& table,
                                       uint64_t bucket, int slot, int base,
                                       const AttrFingerprintCodec& codec,
                                       const CompiledVectorPredicate& pred) {
  for (const CompiledVectorPredicate::Term& term : pred.terms) {
    uint32_t stored = codec.Load(table, bucket, slot, base, term.attr_index);
    bool any = false;
    for (uint32_t fp : term.fps) {
      if (fp == stored) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

/// True if the fingerprint vector stored at (bucket, slot) — payload offset
/// `base` — satisfies every term of `pred`.
inline bool VectorEntryMatches(const BucketTable& table, uint64_t bucket,
                               int slot, int base,
                               const AttrFingerprintCodec& codec,
                               const Predicate& pred) {
  for (const AttributeTerm& term : pred.terms()) {
    uint32_t stored = codec.Load(table, bucket, slot, base, term.attr_index);
    bool any = false;
    for (uint64_t v : term.values) {
      if (codec.ValueFingerprint(v) == stored) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

}  // namespace ccf

#endif  // CCF_CCF_ENTRY_MATCH_H_
