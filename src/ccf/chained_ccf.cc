#include "ccf/chained_ccf.h"

#include <optional>

#include "ccf/entry_match.h"

namespace ccf {

ChainedCcf::ChainedCcf(CcfConfig config, BucketTable table)
    : CcfBase(config, std::move(table)),
      codec_(&hasher_, config.num_attrs, config.attr_fp_bits,
             config.small_value_opt) {}

Result<std::unique_ptr<ConditionalCuckooFilter>> ChainedCcf::Make(
    const CcfConfig& config) {
  CCF_ASSIGN_OR_RETURN(
      BucketTable table,
      BucketTable::Make(config.num_buckets, config.slots_per_bucket,
                        config.key_fp_bits,
                        config.num_attrs * config.attr_fp_bits));
  return std::unique_ptr<ConditionalCuckooFilter>(
      new ChainedCcf(config, std::move(table)));
}

Status ChainedCcf::Insert(uint64_t key, std::span<const uint64_t> attrs) {
  if (static_cast<int>(attrs.size()) != config_.num_attrs) {
    return Status::Invalid("attribute count does not match schema");
  }
  EnsureTableUnique();
  uint64_t bucket;
  uint32_t fp;
  KeyAddress(key, &bucket, &fp);
  BucketPair pair = PairOf(bucket, fp);
  // Packed-compare scalar fast path (opt-in via
  // CcfConfig::reproducible_scalar = false); falls through to the full
  // addressed insertion when displacement or chain/conversion work is
  // needed.
  if (ScalarInsertFast(pair, fp, attrs)) return Status::OK();
  return InsertAddressed(pair, fp, attrs);
}

Status ChainedCcf::InsertAddressed(const BucketPair& first_pair, uint32_t fp,
                                   std::span<const uint64_t> attrs) {
  ChainWalk walk(&hasher_, table_->bucket_mask(), first_pair.primary, fp);
  for (int hop = 0; hop < ChainCap(); ++hop) {
    const BucketPair& pair = walk.pair();

    // Algorithm 4: success if the identical (κ, α) entry already exists.
    auto slots = SlotsWithFp(pair, fp);
    for (const auto& [b, s] : slots) {
      if (codec_.EqualsStored(*table_, b, s, /*base=*/0, attrs)) {
        if (hop > max_chain_seen_) max_chain_seen_ = hop;
        return Status::OK();
      }
    }

    if (static_cast<int>(slots.size()) >= config_.max_dupes) {
      walk.Advance();  // pair saturated with κ copies: next pair (ℓ̃)
      continue;
    }

    bool placed = PlaceWithKicks(pair, fp, [&](uint64_t b, int s) {
      codec_.Store(table_.get(), b, s, /*base=*/0, attrs);
    });
    if (!placed) {
      return Status::CapacityError(
          "chained CCF: cuckoo kick budget exhausted");
    }
    if (hop > max_chain_seen_) max_chain_seen_ = hop;
    ++num_rows_;
    return Status::OK();
  }

  // Every pair up to the cap holds d copies of κ: queries for this key
  // return true regardless of predicate (Theorem 3), so dropping the row
  // cannot cause a false negative.
  ++num_overflow_rows_;
  return Status::OK();
}

uint64_t ChainedCcf::PackRowPayload(std::span<const uint64_t> attrs) const {
  return table_->slot_bits() <= 64 ? codec_.Pack(attrs) : 0;
}

bool ChainedCcf::TryInsertNoKick(const BucketPair& pair, uint32_t fp,
                                 std::span<const uint64_t> attrs,
                                 uint64_t payload) {
  if (table_->slot_bits() > 64) {
    // Oversized geometry: per-attribute scan and store (cold fallback).
    auto [count, dup] = ScanPairWithFp(pair, fp, [&](uint64_t b, int s) {
      return codec_.EqualsStored(*table_, b, s, /*base=*/0, attrs);
    });
    if (dup) return true;
    if (count >= config_.max_dupes) return false;
    auto [b, s] = FreeSlotInPair(pair);
    if (s < 0) return false;
    table_->Put(b, s, fp);
    codec_.Store(table_.get(), b, s, /*base=*/0, attrs);
    ++num_rows_;
    return true;
  }
  // Packed fast path: the row's vector was hashed once into `payload`
  // (PackRowPayload, possibly straight from the rebuild memo); one fused
  // pass per bucket serves the duplicate compare (single-field equality),
  // the fp copy count, and the free-slot search (countr_one of the
  // occupancy word) — and placement writes the whole slot in one field
  // store. Decisions are identical to the generic path above.
  (void)attrs;
  const int vec_bits = codec_.vector_bits();
  const uint64_t packed = payload;
  int count = 0;
  uint64_t free_bucket = 0;
  int free_slot = -1;
  auto scan = [&](uint64_t b) {  // returns true on a duplicate hit
    uint64_t occ = table_->OccupiedMask(b);
    uint64_t m = table_->MatchMask(b, fp) & occ;
    while (m != 0) {
      int s = std::countr_zero(m);
      m &= m - 1;
      ++count;
      if (table_->GetPayloadField(b, s, 0, vec_bits) == packed) return true;
    }
    if (free_slot < 0) {
      int fs = std::countr_one(occ);
      if (fs < table_->slots_per_bucket()) {
        free_bucket = b;
        free_slot = fs;
      }
    }
    return false;
  };
  if (scan(pair.primary)) return true;  // collapsed
  if (!pair.degenerate() && scan(pair.alt)) return true;
  if (count >= config_.max_dupes) return false;  // chain walk: wave 2
  if (free_slot < 0) return false;  // displacement needed: wave 2
  table_->PutSlot(free_bucket, free_slot, fp, packed);
  ++num_rows_;
  return true;
}

bool ChainedCcf::EraseRowAddressed(const BucketPair& first_pair, uint32_t fp,
                                   uint64_t payload) {
  // Walk the chain for the exact (fp, packed vector) entry. Deletion is
  // only safe from an UNSATURATED pair: removing a copy from a pair
  // holding max_dupes copies would stop every future walk there, stranding
  // entries further down the chain (false negatives), and could break the
  // §7.1 first-pair invariant. An unsaturated pair is by construction the
  // chain's terminal pair, so nothing lives beyond it and erasing is safe.
  // Saturated matches are left as residue for compaction.
  const int vec_bits = codec_.vector_bits();
  std::optional<ChainWalk> walk;
  BucketPair pair = first_pair;
  for (int hop = 0; hop < ChainCap(); ++hop) {
    if (hop > 0) pair = walk->pair();
    uint64_t hit_b = 0;
    int hit_s = -1;
    // Count the WHOLE pair (no short-circuit): saturation decides both
    // deletability and chain continuation.
    auto [count, matched] = ScanPairWithFp(pair, fp, [&](uint64_t b, int s) {
      if (hit_s < 0 &&
          table_->GetPayloadField(b, s, 0, vec_bits) == payload) {
        hit_b = b;
        hit_s = s;
      }
      return false;
    });
    (void)matched;
    if (hit_s >= 0) {
      if (count >= config_.max_dupes) return false;  // residue: compaction
      table_->Erase(hit_b, hit_s);
      return true;
    }
    if (count != config_.max_dupes) return false;  // chain ends: not found
    if (hop + 1 < ChainCap()) {
      if (!walk) {
        walk.emplace(&hasher_, table_->bucket_mask(), first_pair.primary, fp);
      }
      walk->Advance();
    }
  }
  return false;
}

bool ChainedCcf::ContainsKey(uint64_t key) const {
  uint64_t bucket;
  uint32_t fp;
  KeyAddress(key, &bucket, &fp);
  // §7.1: the chain is irrelevant for key-only queries — a present key
  // always has a copy in its first bucket pair.
  return CountFpInPair(PairOf(bucket, fp), fp) > 0;
}

bool ChainedCcf::Contains(uint64_t key, const Predicate& pred) const {
  uint64_t bucket;
  uint32_t fp;
  KeyAddress(key, &bucket, &fp);
  return ContainsAddressed(bucket, fp, pred);
}

bool ChainedCcf::ContainsAddressed(uint64_t bucket, uint32_t fp,
                                   const Predicate& pred) const {
  return WalkContains(PairOf(bucket, fp), fp, [&](uint64_t b, int s) {
    return VectorEntryMatches(*table_, b, s, /*base=*/0, codec_, pred);
  });
}

bool ChainedCcf::ContainsAddressedExcluding(
    uint64_t bucket, uint32_t fp, const Predicate& pred,
    std::span<const uint64_t> excluded) const {
  if (excluded.empty()) return ContainsAddressed(bucket, fp, pred);
  CCF_DCHECK(table_->slot_bits() <= 64);
  // Excluded entries are physically present until commit reclaims them, so
  // the walk's saturation counts (ScanPairWithFp's totals) are unchanged;
  // they merely stop matching. The terminal all-saturated case still
  // answers true — one-sided, exactly like any other false positive.
  return WalkContains(PairOf(bucket, fp), fp, [&](uint64_t b, int s) {
    return !PayloadExcluded(EntryPayloadWord(b, s), excluded) &&
           VectorEntryMatches(*table_, b, s, /*base=*/0, codec_, pred);
  });
}

bool ChainedCcf::ContainsKeyAddressedExcluding(
    uint64_t bucket, uint32_t fp, std::span<const uint64_t> excluded) const {
  if (excluded.empty()) return ContainsKeyAddressed(bucket, fp);
  CCF_DCHECK(table_->slot_bits() <= 64);
  // A surviving row of the key may live further down the chain while every
  // first-pair copy is staged-erased (the first pair must then be
  // saturated, which is exactly the walk-continues condition) — so the
  // key-only exclusion probe needs the full walk, not the §7.1 first-pair
  // shortcut.
  return WalkContains(PairOf(bucket, fp), fp, [&](uint64_t b, int s) {
    return !PayloadExcluded(EntryPayloadWord(b, s), excluded);
  });
}

void ChainedCcf::LookupBatchBroadcast(std::span<const uint64_t> keys,
                                      const Predicate& pred,
                                      std::span<bool> out) const {
  // One predicate for the whole batch: hash its values once, compare raw
  // fingerprints per entry. Single-wave: with a selective predicate a
  // primary-only match is rare, so the alt-deferring two-wave flavour does
  // not pay here (see PlainCcf::LookupBatchBroadcast).
  CompiledVectorPredicate compiled =
      CompiledVectorPredicate::Compile(codec_, pred);
  BatchResolve(keys, out, [&](size_t, const BucketPair& pair, uint32_t fp) {
    return WalkContains(pair, fp, [&](uint64_t b, int s) {
      return VectorEntryMatchesCompiled(*table_, b, s, /*base=*/0, codec_,
                                        compiled);
    });
  });
}

Result<std::unique_ptr<KeyFilter>> ChainedCcf::PredicateQuery(
    const Predicate& pred) const {
  // §6.2: entries cannot be erased (gaps would break chains); instead each
  // non-matching entry is marked with an extra bit.
  BitVector marks(table_->num_slots());
  for (uint64_t b = 0; b < table_->num_buckets(); ++b) {
    for (int s = 0; s < table_->slots_per_bucket(); ++s) {
      if (!table_->occupied(b, s)) continue;
      if (!VectorEntryMatches(*table_, b, s, /*base=*/0, codec_, pred)) {
        marks.SetBit(b * static_cast<uint64_t>(table_->slots_per_bucket()) +
                         static_cast<uint64_t>(s),
                     true);
      }
    }
  }
  return std::unique_ptr<KeyFilter>(new MarkedKeyFilter(
      table_, std::move(marks), hasher_, config_.max_dupes, ChainCap(),
      /*chain_on_full_pair=*/true));
}

void ChainedCcf::SaveExtras(ByteWriter* writer) const {
  writer->WriteU64(num_overflow_rows_);
  writer->WriteU32(static_cast<uint32_t>(max_chain_seen_));
}

Status ChainedCcf::LoadExtras(ByteReader* reader) {
  CCF_ASSIGN_OR_RETURN(num_overflow_rows_, reader->ReadU64());
  CCF_ASSIGN_OR_RETURN(uint32_t seen, reader->ReadU32());
  max_chain_seen_ = static_cast<int>(seen);
  return Status::OK();
}

}  // namespace ccf
