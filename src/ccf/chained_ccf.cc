#include "ccf/chained_ccf.h"

#include <optional>

#include "ccf/entry_match.h"

namespace ccf {

ChainedCcf::ChainedCcf(CcfConfig config, BucketTable table)
    : CcfBase(config, std::move(table)),
      codec_(&hasher_, config.num_attrs, config.attr_fp_bits,
             config.small_value_opt) {}

Result<std::unique_ptr<ConditionalCuckooFilter>> ChainedCcf::Make(
    const CcfConfig& config) {
  CCF_ASSIGN_OR_RETURN(
      BucketTable table,
      BucketTable::Make(config.num_buckets, config.slots_per_bucket,
                        config.key_fp_bits,
                        config.num_attrs * config.attr_fp_bits));
  return std::unique_ptr<ConditionalCuckooFilter>(
      new ChainedCcf(config, std::move(table)));
}

Status ChainedCcf::Insert(uint64_t key, std::span<const uint64_t> attrs) {
  if (static_cast<int>(attrs.size()) != config_.num_attrs) {
    return Status::Invalid("attribute count does not match schema");
  }
  uint64_t bucket;
  uint32_t fp;
  KeyAddress(key, &bucket, &fp);

  ChainWalk walk(&hasher_, table_.bucket_mask(), bucket, fp);
  for (int hop = 0; hop < ChainCap(); ++hop) {
    const BucketPair& pair = walk.pair();

    // Algorithm 4: success if the identical (κ, α) entry already exists.
    auto slots = SlotsWithFp(pair, fp);
    for (const auto& [b, s] : slots) {
      if (codec_.EqualsStored(table_, b, s, /*base=*/0, attrs)) {
        if (hop > max_chain_seen_) max_chain_seen_ = hop;
        return Status::OK();
      }
    }

    if (static_cast<int>(slots.size()) >= config_.max_dupes) {
      walk.Advance();  // pair saturated with κ copies: next pair (ℓ̃)
      continue;
    }

    bool placed = PlaceWithKicks(pair, fp, [&](uint64_t b, int s) {
      codec_.Store(&table_, b, s, /*base=*/0, attrs);
    });
    if (!placed) {
      return Status::CapacityError(
          "chained CCF: cuckoo kick budget exhausted");
    }
    if (hop > max_chain_seen_) max_chain_seen_ = hop;
    ++num_rows_;
    return Status::OK();
  }

  // Every pair up to the cap holds d copies of κ: queries for this key
  // return true regardless of predicate (Theorem 3), so dropping the row
  // cannot cause a false negative.
  ++num_overflow_rows_;
  return Status::OK();
}

bool ChainedCcf::ContainsKey(uint64_t key) const {
  uint64_t bucket;
  uint32_t fp;
  KeyAddress(key, &bucket, &fp);
  // §7.1: the chain is irrelevant for key-only queries — a present key
  // always has a copy in its first bucket pair.
  return CountFpInPair(PairOf(bucket, fp), fp) > 0;
}

bool ChainedCcf::Contains(uint64_t key, const Predicate& pred) const {
  uint64_t bucket;
  uint32_t fp;
  KeyAddress(key, &bucket, &fp);
  return ContainsAddressed(bucket, fp, pred);
}

bool ChainedCcf::ContainsAddressed(uint64_t bucket, uint32_t fp,
                                   const Predicate& pred) const {
  return WalkContains(PairOf(bucket, fp), fp, [&](uint64_t b, int s) {
    return VectorEntryMatches(table_, b, s, /*base=*/0, codec_, pred);
  });
}

void ChainedCcf::LookupBatchBroadcast(std::span<const uint64_t> keys,
                                      const Predicate& pred,
                                      std::span<bool> out) const {
  // One predicate for the whole batch: hash its values once, compare raw
  // fingerprints per entry. Single-wave: with a selective predicate a
  // primary-only match is rare, so the alt-deferring two-wave flavour does
  // not pay here (see PlainCcf::LookupBatchBroadcast).
  CompiledVectorPredicate compiled =
      CompiledVectorPredicate::Compile(codec_, pred);
  BatchResolve(keys, out, [&](size_t, const BucketPair& pair, uint32_t fp) {
    return WalkContains(pair, fp, [&](uint64_t b, int s) {
      return VectorEntryMatchesCompiled(table_, b, s, /*base=*/0, codec_,
                                        compiled);
    });
  });
}

Result<std::unique_ptr<KeyFilter>> ChainedCcf::PredicateQuery(
    const Predicate& pred) const {
  // §6.2: entries cannot be erased (gaps would break chains); instead each
  // non-matching entry is marked with an extra bit.
  BitVector marks(table_.num_slots());
  for (uint64_t b = 0; b < table_.num_buckets(); ++b) {
    for (int s = 0; s < table_.slots_per_bucket(); ++s) {
      if (!table_.occupied(b, s)) continue;
      if (!VectorEntryMatches(table_, b, s, /*base=*/0, codec_, pred)) {
        marks.SetBit(b * static_cast<uint64_t>(table_.slots_per_bucket()) +
                         static_cast<uint64_t>(s),
                     true);
      }
    }
  }
  return std::unique_ptr<KeyFilter>(new MarkedKeyFilter(
      table_, std::move(marks), hasher_, config_.max_dupes, ChainCap(),
      /*chain_on_full_pair=*/true));
}

void ChainedCcf::SaveExtras(ByteWriter* writer) const {
  writer->WriteU64(num_overflow_rows_);
  writer->WriteU32(static_cast<uint32_t>(max_chain_seen_));
}

Status ChainedCcf::LoadExtras(ByteReader* reader) {
  CCF_ASSIGN_OR_RETURN(num_overflow_rows_, reader->ReadU64());
  CCF_ASSIGN_OR_RETURN(uint32_t seen, reader->ReadU32());
  max_chain_seen_ = static_cast<int>(seen);
  return Status::OK();
}

}  // namespace ccf
