// Two-stage attribute compression (§9, "Attribute compression"): build with
// wide attribute fingerprints, then remap each column's observed wide
// fingerprints onto a narrow code space chosen to minimize collisions
// between frequent values (compress.h). Queries translate predicate values
// through the same per-column mapping.
#ifndef CCF_CCF_COMPRESSED_CCF_H_
#define CCF_CCF_COMPRESSED_CCF_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "ccf/ccf.h"
#include "ccf/compress.h"

namespace ccf {

/// \brief A CCF whose attribute fingerprints were compressed from
/// `wide_bits` to `config.attr_fp_bits` via frequency-greedy remapping.
///
/// Unknown query values (never seen at build time) fall back to hashing
/// into the narrow space; since they were never inserted, any match is an
/// ordinary fingerprint collision — no false negatives are introduced.
class CompressedCcf {
 public:
  /// Builds in two stages from the full row set. `wide_bits` is the stage-1
  /// fingerprint width (e.g. 16); `config.attr_fp_bits` the compressed one.
  static Result<CompressedCcf> Build(
      CcfVariant variant, CcfConfig config, int wide_bits,
      const std::vector<uint64_t>& keys,
      const std::vector<std::vector<uint64_t>>& attrs);

  bool ContainsKey(uint64_t key) const { return inner_->ContainsKey(key); }

  /// Key + predicate; values are remapped per column before probing.
  bool Contains(uint64_t key, const Predicate& pred) const;

  uint64_t SizeInBits() const { return inner_->SizeInBits(); }
  const ConditionalCuckooFilter& inner() const { return *inner_; }

  /// Collision probability added by compression on column `attr`
  /// (diagnostic, see AddedCollisionProbability).
  double added_collisions(int attr) const {
    return added_collisions_[static_cast<size_t>(attr)];
  }

 private:
  CompressedCcf() = default;

  uint64_t RemapValue(int attr, uint64_t value) const;

  std::unique_ptr<ConditionalCuckooFilter> inner_;
  // Per column: wide fingerprint → narrow code.
  std::vector<std::unordered_map<uint32_t, uint32_t>> mappings_;
  std::vector<double> added_collisions_;
  int wide_bits_ = 16;
  uint64_t salt_ = 0;
};

/// Serializes `filter` and zero-run compresses the blob (CompressBlob) —
/// the cold-tier at-rest form used by serve/filter_catalog. Unlike
/// CompressedCcf::Build (a lossy two-stage construction that needs the raw
/// rows), this round-trips any built filter exactly.
std::string EncodeFilterBlob(const ConditionalCuckooFilter& filter);

/// Inverse of EncodeFilterBlob: decompresses and deserializes (copy mode).
Result<std::unique_ptr<ConditionalCuckooFilter>> DecodeFilterBlob(
    std::string_view blob);

}  // namespace ccf

#endif  // CCF_CCF_COMPRESSED_CCF_H_
