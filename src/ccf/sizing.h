// Sizing rules of §8 / Table 1: predict the number of occupied entries from
// the key-duplication profile of the data, pick bucket geometry from the
// empirically attainable load factors, and report bit budgets.
#ifndef CCF_CCF_SIZING_H_
#define CCF_CCF_SIZING_H_

#include <cstdint>
#include <span>

#include "ccf/ccf.h"

namespace ccf {

/// \brief Key-duplication statistics of a dataset (A = number of distinct
/// attribute vectors of a random key, §8).
struct DuplicateProfile {
  uint64_t num_keys = 0;      ///< nk — distinct keys
  uint64_t num_rows = 0;      ///< total distinct (key, attrs) rows
  double mean_dupes = 0.0;    ///< E[A]
  uint64_t max_dupes = 0;     ///< max A
  double mean_capped = 0.0;   ///< E[min{A, d}]
  double mean_capped_chain = 0.0;  ///< E[min{A, d·Lmax}]

  /// Computes the profile from per-key distinct-duplicate counts.
  /// `chain_cap` is Lmax (0 = unbounded → kHardChainCap).
  static DuplicateProfile FromCounts(std::span<const uint64_t> counts, int d,
                                     int chain_cap);
};

/// Upper bound on occupied entries EZ′ per Table 1:
///   Bloom            → nk
///   Mixed/conversion → nk·E[min{A, d}]   (a converted key pins d slots)
///   Chained          → nk·E[min{A, d·Lmax}]
///   Plain            → num_rows (every distinct row needs a slot)
double PredictedEntries(CcfVariant variant, const DuplicateProfile& profile,
                        const CcfConfig& config);

/// Empirically attainable load factor for the chained/mixed structures
/// (Figure 4: b=4 → ≈0.75, b=6 → ≈0.87, b=8 → ≈0.90; Bloom occupancy
/// matches a plain cuckoo filter → ≈0.95 at b=4).
double AttainableLoadFactor(CcfVariant variant, int slots_per_bucket);

/// Fills in config.num_buckets so that m·b ≈ EZ′ / β (§8), honouring the
/// b ≈ 2d rule of thumb if slots_per_bucket is 0 in `config`.
Result<CcfConfig> ChooseGeometry(CcfVariant variant, CcfConfig config,
                                 const DuplicateProfile& profile);

/// Bits per stored row at the chosen geometry (the "bit efficiency"
/// numerator of eq. 8 divides this by n·log2(1/ρ)).
double BitsPerRow(uint64_t size_in_bits, uint64_t num_rows);

}  // namespace ccf

#endif  // CCF_CCF_SIZING_H_
