// Sharded CCF: partitions keys across N independent ConditionalCuckooFilter
// shards behind the same interface. Each key is routed to exactly one shard
// by a hash that is uncorrelated with the in-shard addressing hash, so shard
// answers are bit-identical to a single filter holding that shard's rows.
//
// Concurrency model (the online serving core):
//   * Reads are lock-free and always safe: every query method pins the
//     filter's epoch domain, loads each shard's current table snapshot
//     pointer once for the whole call, and resolves against those immutable
//     snapshots. Readers never block on writers or resizes.
//   * Writes are serialized per shard by a writer mutex; writers to
//     DIFFERENT shards run fully in parallel (InsertParallel's N-way build).
//     In-place writes to a shard mutate its current snapshot, so readers of
//     that specific shard must be quiesced during in-place writes — the same
//     single-writer/multi-reader contract as the unsharded filter.
//   * Resizes never block readers: ResizeShard rebuilds ONE shard at the new
//     geometry from the shard's retained row log (re-placing rows from the
//     hash memo, not re-hashing) and publishes the replacement via an atomic
//     epoch swap. Concurrent readers see either the complete old shard or
//     the complete new shard — never a partial table, never a false
//     negative — and the old table is freed only after every reader that
//     could hold it has unpinned. Insert/InsertParallel trigger these
//     per-shard resizes transparently on CapacityError instead of failing
//     the build.
//
// The batched lookup path prefetches the target shard's bucket pair per key
// and resolves through CcfBase::ContainsAddressed; shards share one salt but
// may have DIFFERENT bucket counts after per-shard resizes, so addressing is
// re-masked per target shard.
#ifndef CCF_CCF_SHARDED_CCF_H_
#define CCF_CCF_SHARDED_CCF_H_

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "ccf/ccf.h"
#include "ccf/ccf_base.h"
#include "util/epoch.h"

namespace ccf {

/// Sharding parameters.
struct ShardedCcfOptions {
  /// Number of shards (rounded up to a power of two).
  int num_shards = 4;
  /// Threads used by InsertParallel; 0 means one per shard.
  int build_threads = 0;
  /// Doubling resizes a single Insert/InsertParallel call may trigger
  /// transparently per shard on CapacityError before surfacing the error.
  /// 0 disables online resize (failures surface exactly as before).
  int max_auto_resizes = 8;
};

/// \brief N independent CCF shards behind the ConditionalCuckooFilter
/// interface, with epoch-protected snapshots and shard-by-shard background
/// resize (see the concurrency model above).
class ShardedCcf : public ConditionalCuckooFilter {
 public:
  /// Creates `options.num_shards` shards of `variant`. `config.num_buckets`
  /// is the TOTAL bucket budget; each shard gets num_buckets / num_shards
  /// (at least 1, rounded up to a power of two). All shards share
  /// config.salt so a key's fingerprint is shard-independent (bucket
  /// indices are per-shard re-maskings of the same hash).
  static Result<std::unique_ptr<ShardedCcf>> Make(
      CcfVariant variant, const CcfConfig& config,
      const ShardedCcfOptions& options);

  /// Routes the row to its shard (one writer per shard; takes that shard's
  /// writer mutex). On CapacityError the shard transparently resizes
  /// (doubling, up to options.max_auto_resizes) and the row lands in the
  /// rebuilt shard. The in-place write itself follows the single-writer
  /// contract — readers of THIS shard must be quiesced while it runs (the
  /// header's writer rules); only the capacity-triggered rebuild+swap part
  /// is safe under concurrent readers.
  Status Insert(uint64_t key, std::span<const uint64_t> attrs) override;

  /// Bulk parallel build. `attrs` is row-major: row i occupies
  /// attrs[i*num_attrs, (i+1)*num_attrs). Rows are gathered per shard
  /// (insertion order within a shard follows the input order) and each
  /// shard runs its own batched two-wave InsertBatch under its writer
  /// mutex, with `num_threads` threads striping over shards (0 →
  /// options.build_threads). A shard that fails with CapacityError resizes
  /// itself (doubling, up to options.max_auto_resizes) and rebuilds from
  /// its retained row log, so well-provisioned auto-resize budgets make
  /// whole-build doubling retries unnecessary. Per-shard errors are
  /// aggregated deterministically: the error of the LOWEST failing shard
  /// index is returned (prefixed "shard N: "), independent of thread
  /// scheduling; remaining shards still finish, so the structure stays
  /// consistent.
  ///
  /// `hash_memo` follows ConditionalCuckooFilter::InsertBatch (two words
  /// per row), aligned to the INPUT row order: the shard route, the
  /// in-shard key hash, and the packed payload all depend only on the
  /// salt, so a memo filled here stays valid across bucket-doubling
  /// rebuilds of a fresh ShardedCcf with the same salt.
  Status InsertParallel(std::span<const uint64_t> keys,
                        std::span<const uint64_t> attrs, int num_threads = 0,
                        std::vector<uint64_t>* hash_memo = nullptr);

  /// The ConditionalCuckooFilter bulk-build entry: InsertParallel with the
  /// configured thread count.
  Status InsertBatch(std::span<const uint64_t> keys,
                     std::span<const uint64_t> attrs,
                     std::vector<uint64_t>* hash_memo = nullptr) override;

  /// Rebuilds shard `shard` at `new_num_buckets` buckets (0 → double the
  /// shard's current count) from its retained row log, publishing the
  /// replacement via epoch swap. Readers keep probing the old snapshot
  /// until the swap and are never blocked; the old table is reclaimed once
  /// the last reader unpins. Serializes with other writers of the shard.
  /// The rebuilt shard is bit-identical to a from-scratch batched build of
  /// the shard's rows at the new geometry. Fails on deserialized filters
  /// (the row log is not serialized) and on out-of-range shard indices.
  Status ResizeShard(int shard, uint64_t new_num_buckets = 0);

  /// ResizeShard on a background thread; the future carries its Status.
  std::future<Status> ResizeShardAsync(int shard,
                                       uint64_t new_num_buckets = 0);

  bool ContainsKey(uint64_t key) const override;
  bool Contains(uint64_t key, const Predicate& pred) const override;
  Status LookupBatch(std::span<const uint64_t> keys,
                     std::span<const Predicate> preds,
                     std::span<bool> out) const override;
  void ContainsKeyBatch(std::span<const uint64_t> keys,
                        std::span<bool> out) const override;

  /// Derives one key filter per shard, routed like the source filter. The
  /// per-shard derived filters alias the shard snapshots (no table copy)
  /// and stay valid even if a later resize retires the shard object.
  Result<std::unique_ptr<KeyFilter>> PredicateQuery(
      const Predicate& pred) const override;

  uint64_t SizeInBits() const override;
  double LoadFactor() const override;
  uint64_t num_entries() const override;
  uint64_t num_rows() const override;

  /// The per-shard configuration AT CONSTRUCTION (num_buckets is the
  /// initial per-shard value; shards may have grown since — see
  /// shard(i).config() for a shard's current geometry). Returned from an
  /// immutable member, so the reference stays valid across resizes and is
  /// safe to read concurrently with them.
  const CcfConfig& config() const override { return shard_config_; }
  CcfVariant variant() const override { return variant_; }

  /// Completed per-shard resizes over the filter's lifetime (auto-triggered
  /// and explicit).
  uint64_t num_resizes() const {
    return num_resizes_.load(std::memory_order_relaxed);
  }

  /// Whether online resize is available: true for filters built in-process
  /// (which retain their row log), false after Deserialize (serialized
  /// blobs carry tables, not rows).
  bool resizable() const { return resizable_; }

  /// Serialized-blob magic ("SCF1"); ConditionalCuckooFilter::Deserialize
  /// dispatches here when it leads a blob.
  static constexpr uint32_t kMagic = 0x53434631;

  std::string Serialize() const override;
  static Result<std::unique_ptr<ConditionalCuckooFilter>> Deserialize(
      std::string_view data);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// The shard's CURRENT filter. Quiescent-use accessor (tests, stats): the
  /// reference is valid until the shard is next resized.
  const ConditionalCuckooFilter& shard(int i) const {
    return *shards_[static_cast<size_t>(i)]->handle.Current();
  }

  /// Shard index of a key (uncorrelated with in-shard addressing).
  size_t ShardOf(uint64_t key) const {
    return static_cast<size_t>(shard_hasher_.Hash(key, 0) & shard_mask_);
  }

 private:
  /// Per-shard serving state: the epoch-swappable filter, the writer lock,
  /// and the retained row log that resizes rebuild from. The log mirrors
  /// every accepted row in arrival order together with its two
  /// geometry-independent memo words (salt-keyed key hash + packed
  /// payload), so a rebuild re-masks instead of re-hashing.
  struct Shard {
    Shard(EpochDomain* domain, std::unique_ptr<ConditionalCuckooFilter> f)
        : handle(domain, std::move(f)) {}
    TableHandle<ConditionalCuckooFilter> handle;
    std::mutex writer_mu;
    std::vector<uint64_t> keys;   // guarded by writer_mu
    std::vector<uint64_t> attrs;  // row-major, guarded by writer_mu
    std::vector<uint64_t> memo;   // 2 words per row, guarded by writer_mu
  };

  ShardedCcf(std::vector<std::unique_ptr<ConditionalCuckooFilter>> shards,
             ShardedCcfOptions options);

  /// One resize attempt at the given geometry; caller holds writer_mu.
  Status ResizeShardLocked(Shard& shard, uint64_t new_num_buckets);
  /// Doubling-retry loop around ResizeShardLocked (auto-resize path);
  /// caller holds writer_mu and has just seen CapacityError.
  Status GrowShardLocked(Shard& shard, Status capacity_error);

  /// Every shard's current snapshot, loaded once under the caller's pin —
  /// THE way batch read paths bind the shard set.
  std::vector<const CcfBase*> LoadBases(const EpochDomain::Guard& guard) const;

  /// Declared first so it is destroyed LAST: retired shard filters are
  /// freed by the domain's destructor after the handles are gone.
  mutable EpochDomain epoch_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ShardedCcfOptions options_;
  /// Immutable copies taken at construction so config()/variant() never
  /// dereference a swappable shard object (a concurrent resize of shard 0
  /// could retire it mid-read).
  CcfConfig shard_config_;
  CcfVariant variant_;
  uint64_t shard_mask_ = 0;
  Hasher shard_hasher_;
  std::atomic<uint64_t> num_resizes_{0};
  bool resizable_ = true;
};

}  // namespace ccf

#endif  // CCF_CCF_SHARDED_CCF_H_
