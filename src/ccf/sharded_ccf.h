// Sharded CCF: partitions keys across N independent ConditionalCuckooFilter
// shards behind the same interface. Each key is routed to exactly one shard
// by a hash that is uncorrelated with the in-shard addressing hash, so shard
// answers are bit-identical to a single filter holding that shard's rows.
//
// Concurrency model:
//   * Build: InsertParallel partitions rows by shard and inserts with one
//     std::thread per stripe of shards — shards never share mutable state,
//     so no locks are needed.
//   * Serve: all query methods are const and lock-free; any number of
//     concurrent readers may probe while no writer is active (the same
//     single-writer/multi-reader contract as the unsharded filter, now with
//     N-way write parallelism at build time).
//
// The batched lookup path prefetches the target shard's bucket pair per key
// (all shards share one salt, hence one address computation) and resolves
// through CcfBase::ContainsAddressed.
#ifndef CCF_CCF_SHARDED_CCF_H_
#define CCF_CCF_SHARDED_CCF_H_

#include <memory>
#include <vector>

#include "ccf/ccf.h"
#include "ccf/ccf_base.h"

namespace ccf {

/// Sharding parameters.
struct ShardedCcfOptions {
  /// Number of shards (rounded up to a power of two).
  int num_shards = 4;
  /// Threads used by InsertParallel; 0 means one per shard.
  int build_threads = 0;
};

/// \brief N independent CCF shards behind the ConditionalCuckooFilter
/// interface.
class ShardedCcf : public ConditionalCuckooFilter {
 public:
  /// Creates `options.num_shards` shards of `variant`. `config.num_buckets`
  /// is the TOTAL bucket budget; each shard gets num_buckets / num_shards
  /// (at least 1, rounded up to a power of two). All shards share
  /// config.salt so a key's (bucket, fingerprint) address is shard-
  /// independent.
  static Result<std::unique_ptr<ShardedCcf>> Make(
      CcfVariant variant, const CcfConfig& config,
      const ShardedCcfOptions& options);

  /// Routes the row to its shard (single-writer).
  Status Insert(uint64_t key, std::span<const uint64_t> attrs) override;

  /// Bulk parallel build. `attrs` is row-major: row i occupies
  /// attrs[i*num_attrs, (i+1)*num_attrs). Rows are gathered per shard
  /// (insertion order within a shard follows the input order) and each
  /// shard runs its own batched two-wave InsertBatch, with `num_threads`
  /// threads striping over shards (0 → options.build_threads). Returns the
  /// first per-shard error, if any (remaining shards still finish, so the
  /// structure stays consistent — CapacityError here means resize and
  /// rebuild, as for the unsharded filter).
  ///
  /// `hash_memo` follows ConditionalCuckooFilter::InsertBatch (two words
  /// per row), aligned to the INPUT row order: the shard route, the
  /// in-shard key hash, and the packed payload all depend only on the
  /// salt, so a memo filled here stays valid across bucket-doubling
  /// rebuilds of a fresh ShardedCcf with the same salt.
  Status InsertParallel(std::span<const uint64_t> keys,
                        std::span<const uint64_t> attrs, int num_threads = 0,
                        std::vector<uint64_t>* hash_memo = nullptr);

  /// The ConditionalCuckooFilter bulk-build entry: InsertParallel with the
  /// configured thread count.
  Status InsertBatch(std::span<const uint64_t> keys,
                     std::span<const uint64_t> attrs,
                     std::vector<uint64_t>* hash_memo = nullptr) override;

  bool ContainsKey(uint64_t key) const override;
  bool Contains(uint64_t key, const Predicate& pred) const override;
  Status LookupBatch(std::span<const uint64_t> keys,
                     std::span<const Predicate> preds,
                     std::span<bool> out) const override;
  void ContainsKeyBatch(std::span<const uint64_t> keys,
                        std::span<bool> out) const override;

  /// Derives one key filter per shard, routed like the source filter.
  Result<std::unique_ptr<KeyFilter>> PredicateQuery(
      const Predicate& pred) const override;

  uint64_t SizeInBits() const override;
  double LoadFactor() const override;
  uint64_t num_entries() const override;
  uint64_t num_rows() const override;

  /// Per-shard configuration (num_buckets is the per-shard value).
  const CcfConfig& config() const override;
  CcfVariant variant() const override;

  /// Serialized-blob magic ("SCF1"); ConditionalCuckooFilter::Deserialize
  /// dispatches here when it leads a blob.
  static constexpr uint32_t kMagic = 0x53434631;

  std::string Serialize() const override;
  static Result<std::unique_ptr<ConditionalCuckooFilter>> Deserialize(
      std::string_view data);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const ConditionalCuckooFilter& shard(int i) const {
    return *shards_[static_cast<size_t>(i)];
  }

  /// Shard index of a key (uncorrelated with in-shard addressing).
  size_t ShardOf(uint64_t key) const {
    return static_cast<size_t>(shard_hasher_.Hash(key, 0) & shard_mask_);
  }

 private:
  ShardedCcf(std::vector<std::unique_ptr<ConditionalCuckooFilter>> shards,
             ShardedCcfOptions options);

  std::vector<std::unique_ptr<ConditionalCuckooFilter>> shards_;
  /// Cached downcasts for the addressed hot path (every variant derives
  /// from CcfBase).
  std::vector<const CcfBase*> bases_;
  ShardedCcfOptions options_;
  uint64_t shard_mask_ = 0;
  Hasher shard_hasher_;
};

}  // namespace ccf

#endif  // CCF_CCF_SHARDED_CCF_H_
