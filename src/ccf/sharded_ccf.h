// Sharded CCF: partitions keys across N independent ConditionalCuckooFilter
// shards behind the same interface. Each key is routed to exactly one shard
// by a hash that is uncorrelated with the in-shard addressing hash, so shard
// answers are bit-identical to a single filter holding that shard's rows.
//
// Concurrency model (the online serving core):
//   * Reads are lock-free and always safe: every query method pins the
//     filter's epoch domain, loads each shard's current table snapshot
//     pointer once for the whole call, and resolves against those immutable
//     snapshots. Readers never block on writers or resizes.
//   * Writes are serialized per shard by a writer mutex; writers to
//     DIFFERENT shards run fully in parallel (InsertParallel's N-way build).
//     In-place writes to a shard mutate its current snapshot, so readers of
//     that specific shard must be quiesced during in-place writes — the same
//     single-writer/multi-reader contract as the unsharded filter.
//   * Batched writes never block readers: BufferWrite stages rows into a
//     per-shard write buffer (readers see them immediately through an exact
//     overlay probe, so Insert→Contains semantics hold before the commit),
//     and CommitWrites builds the staged rows into a copy-on-write clone of
//     the shard's filter OFF the serving path, publishing the result with
//     the same epoch swap a resize uses. Readers stay pinned-lock-free
//     through the whole write cycle; only stagers/committers of the SAME
//     shard serialize with each other.
//   * Proactive resize: with ShardedCcfOptions::resize_watermark set, a
//     commit (or in-place insert) that leaves a shard's occupancy at or
//     above the watermark schedules a background doubling resize BEFORE any
//     insert fails, keeping CapacityError-triggered rebuilds off the tail
//     latency path.
//   * NUMA/thread-per-core mode (ShardedCcfOptions::numa_policy, default
//     auto): on a multi-node machine shards are assigned round-robin to
//     nodes, each shard's table pages are bound to its node at allocation
//     (util/topology.h ScopedNumaAllocNode through BitVector), the build /
//     resize / commit worker threads are pinned to their shard's node, and
//     reader pin/unpin runs against one EpochDomain PER NODE so epoch
//     traffic never crosses the interconnect. With lookup workers enabled
//     (lookup_workers_per_node > 0), batched lookups additionally hand each
//     remote node's shard groups to node-pinned worker threads over bounded
//     SPSC rings — the caller resolves only its own node's shards — with a
//     synchronous same-thread fallback when workers are off or a ring is
//     full. Every mode is bit-identical to the single-domain path; on a
//     single-node machine (or under CCF_NUMA=off) the policy degrades to
//     exactly the previous behavior.
//   * Resizes never block readers: ResizeShard rebuilds ONE shard at the new
//     geometry from the shard's retained row log (re-placing rows from the
//     hash memo, not re-hashing) and publishes the replacement via an atomic
//     epoch swap. Concurrent readers see either the complete old shard or
//     the complete new shard — never a partial table, never a false
//     negative — and the old table is freed only after every reader that
//     could hold it has unpinned. Insert/InsertParallel trigger these
//     per-shard resizes transparently on CapacityError instead of failing
//     the build.
//
// The batched lookup path prefetches the target shard's bucket pair per key
// and resolves through CcfBase::ContainsAddressed; shards share one salt but
// may have DIFFERENT bucket counts after per-shard resizes, so addressing is
// re-masked per target shard.
#ifndef CCF_CCF_SHARDED_CCF_H_
#define CCF_CCF_SHARDED_CCF_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "ccf/ccf.h"
#include "ccf/ccf_base.h"
#include "util/epoch.h"
#include "util/spsc_ring.h"
#include "util/topology.h"

namespace ccf {

/// NUMA placement policy for ShardedCcf.
enum class NumaPolicy {
  /// Node-aware placement when the machine exposes more than one NUMA node
  /// (CCF_NUMA=off collapses the topology to one node, disabling it).
  kAuto,
  /// Single-domain behavior on any machine — exactly the pre-NUMA paths.
  kOff,
  /// Apply the policy even when the topology reports one node, and honor
  /// test-injected topologies (SetTopologyForTesting) as if real. Tests
  /// and benchmarks only.
  kForce,
};

/// Sharding parameters.
struct ShardedCcfOptions {
  /// Number of shards (rounded up to a power of two).
  int num_shards = 4;
  /// Threads used by InsertParallel; 0 means one per shard.
  int build_threads = 0;
  /// Doubling resizes a single Insert/InsertParallel/CommitWrites call may
  /// trigger transparently per shard on CapacityError before surfacing the
  /// error. 0 disables online resize (failures surface exactly as before).
  int max_auto_resizes = 8;
  /// Load-factor watermark for PROACTIVE background resize: when a commit
  /// or in-place insert leaves a shard's occupancy / slots at or above this
  /// fraction, a doubling ResizeShardAsync is scheduled for that shard so
  /// the rebuild happens off the serving path before any insert fails
  /// (CapacityError doubling then stays a fallback, not the steady-state
  /// growth mechanism). 0 (the default) disables the policy — builds that
  /// assert bit-identical geometry trajectories rely on that. 0.85 is a
  /// good serving-side setting. Ignored on deserialized (log-less)
  /// filters, which cannot resize.
  double resize_watermark = 0.0;
  /// Dead-row fraction of a shard's retained row log at which a commit
  /// triggers an in-place compaction of that shard: the log is rewritten
  /// without erased rows and the shard's table is rebuilt (at its current
  /// geometry) from the survivors, clearing any erase residue the
  /// best-effort slot reclamation left behind. Bounds the log under churn
  /// so resizes rebuild from live rows only. <= 0 disables the policy
  /// (explicit Compact() still works). Ignored on deserialized (log-less)
  /// filters.
  double compact_watermark = 0.5;
  /// NUMA placement (see the concurrency model above): shard→node
  /// round-robin assignment, node-bound table pages, node-pinned
  /// build/resize/commit workers, and one epoch domain per node. kAuto
  /// activates all of it only on multi-node machines, so single-node
  /// behavior is unchanged; results are bit-identical either way.
  NumaPolicy numa_policy = NumaPolicy::kAuto;
  /// Per-node lookup worker threads fed over bounded SPSC rings. 0 (the
  /// default) keeps batched lookups synchronous on the calling thread.
  /// With N > 0 and an active multi-node policy, broadcast LookupBatch and
  /// ContainsKeyBatch ship each REMOTE node's shard groups to that node's
  /// workers (the caller resolves its own node inline); a full ring falls
  /// back to inline resolution, so workers add parallelism, never
  /// blocking. Answers are bit-identical to the synchronous path.
  int lookup_workers_per_node = 0;
  /// Auto-commit SIZE trigger for bursty writers: when a buffered write
  /// leaves a shard's staged overlay at or above this many rows, a
  /// background commit of THAT shard is scheduled (same futures machinery
  /// as the watermark resizes), folding the overlay into the probe-speed
  /// table without any explicit CommitWrites call. Staged rows stay
  /// query-visible throughout; the overlay scan just stays short. 0 (the
  /// default) disables the policy.
  size_t autocommit_pending_rows = 0;
  /// Auto-commit AGE trigger: when a buffered write finds the shard's
  /// oldest staged row older than this, a background commit of the shard
  /// is scheduled. Bounds how long a trickle of writes can linger in the
  /// overlay. Zero (the default) disables the policy. Checked on write —
  /// an idle shard holds its staged rows until the next write or an
  /// explicit CommitWrites/DrainMaintenance.
  std::chrono::milliseconds autocommit_interval{0};
};

/// \brief N independent CCF shards behind the ConditionalCuckooFilter
/// interface, with epoch-protected snapshots and shard-by-shard background
/// resize (see the concurrency model above).
class ShardedCcf : public ConditionalCuckooFilter {
 public:
  /// Creates `options.num_shards` shards of `variant`. `config.num_buckets`
  /// is the TOTAL bucket budget; each shard gets num_buckets / num_shards
  /// (at least 1, rounded up to a power of two). All shards share
  /// config.salt so a key's fingerprint is shard-independent (bucket
  /// indices are per-shard re-maskings of the same hash).
  static Result<std::unique_ptr<ShardedCcf>> Make(
      CcfVariant variant, const CcfConfig& config,
      const ShardedCcfOptions& options);

  /// Teardown order matters and is part of the contract: (1) stop and join
  /// the SPSC lookup workers, (2) reap every in-flight watermark-resize
  /// future (they capture `this` and touch shards and domains), and only
  /// then (3) synchronize each per-node epoch domain so deferred
  /// reclamation hooks (write-buffer recycling references the shards) run
  /// while the shards are still alive. The domains themselves are declared
  /// first, so they are destroyed last — after every TableHandle has
  /// released its object into them. Callers holding CommitWritesAsync /
  /// ResizeShardAsync futures must still join those before destroying the
  /// filter (std::future's destructor does, for async-launched tasks).
  ~ShardedCcf() override;

  /// Routes the row to its shard (one writer per shard; takes that shard's
  /// writer mutex). On CapacityError the shard transparently resizes
  /// (doubling, up to options.max_auto_resizes) and the row lands in the
  /// rebuilt shard. The in-place write itself follows the single-writer
  /// contract — readers of THIS shard must be quiesced while it runs (the
  /// header's writer rules); only the capacity-triggered rebuild+swap part
  /// is safe under concurrent readers.
  Status Insert(uint64_t key, std::span<const uint64_t> attrs) override;

  /// Bulk parallel build. `attrs` is row-major: row i occupies
  /// attrs[i*num_attrs, (i+1)*num_attrs). Rows are gathered per shard
  /// (insertion order within a shard follows the input order) and each
  /// shard runs its own batched two-wave InsertBatch under its writer
  /// mutex, with `num_threads` threads striping over shards (0 →
  /// options.build_threads). A shard that fails with CapacityError resizes
  /// itself (doubling, up to options.max_auto_resizes) and rebuilds from
  /// its retained row log, so well-provisioned auto-resize budgets make
  /// whole-build doubling retries unnecessary. Per-shard errors are
  /// aggregated deterministically: the error of the LOWEST failing shard
  /// index is returned (prefixed "shard N: "), independent of thread
  /// scheduling; remaining shards still finish, so the structure stays
  /// consistent.
  ///
  /// `hash_memo` follows ConditionalCuckooFilter::InsertBatch (two words
  /// per row), aligned to the INPUT row order: the shard route, the
  /// in-shard key hash, and the packed payload all depend only on the
  /// salt, so a memo filled here stays valid across bucket-doubling
  /// rebuilds of a fresh ShardedCcf with the same salt.
  Status InsertParallel(std::span<const uint64_t> keys,
                        std::span<const uint64_t> attrs, int num_threads = 0,
                        std::vector<uint64_t>* hash_memo = nullptr);

  /// The ConditionalCuckooFilter bulk-build entry: InsertParallel with the
  /// configured thread count.
  Status InsertBatch(std::span<const uint64_t> keys,
                     std::span<const uint64_t> attrs,
                     std::vector<uint64_t>* hash_memo = nullptr) override;

  /// Stages one row into its shard's write buffer WITHOUT touching the
  /// published table snapshot: readers are never blocked and never see a
  /// partial write, yet the row is immediately visible to every query
  /// method through the pending-row overlay (exact key + attribute
  /// matching, so no false negatives and no new false positives while
  /// staged). O(1) amortized; serializes with other writers of the same
  /// shard on its writer mutex. The row joins the table — and the retained
  /// row log — at the next CommitWrites.
  Status BufferWrite(uint64_t key, std::span<const uint64_t> attrs);

  /// Bulk BufferWrite: row i is (keys[i], attrs[i*num_attrs ..)), row-major
  /// like InsertParallel. Rows are gathered per shard and appended under
  /// each shard's writer mutex once (per-shard staging order follows the
  /// input order).
  Status BufferWriteBatch(std::span<const uint64_t> keys,
                          std::span<const uint64_t> attrs);

  /// Stages a tombstone for every row with this key AND this exact
  /// attribute vector (class delete) into the shard's write buffer, with
  /// the same release-publish visibility contract as BufferWrite: the
  /// matching committed and staged rows are hidden from every query method
  /// the moment this returns, other rows of the key are untouched, and no
  /// unrelated row can turn false-negative (erase records match on the
  /// exact key, so fingerprint aliases never inherit the exclusion). The
  /// next CommitWrites marks the row dead in the retained log (exact) and
  /// best-effort reclaims the table entry; entries that cannot be reclaimed
  /// in place (chained copies in saturated pairs, Bloom folds shared with
  /// other rows) remain as one-sided residue — extra false positives, never
  /// false negatives — until a compaction or resize rebuilds from live rows.
  /// Rejected on deserialized filters (no log to mark) and on oversized
  /// geometries (slot_bits > 64, no packed payload word to match).
  Status BufferErase(uint64_t key, std::span<const uint64_t> attrs);

  /// Atomically (from any reader's perspective) replaces rows (key,
  /// old_attrs) with (key, new_attrs): stages an erase record and an insert
  /// record published together with ONE release store, so no reader can
  /// observe the gap between them — the key never transiently disappears.
  /// Same restrictions as BufferErase.
  Status BufferUpdate(uint64_t key, std::span<const uint64_t> old_attrs,
                      std::span<const uint64_t> new_attrs);

  /// Publishes every shard's staged rows: per shard, clones the current
  /// filter (Clone shares the table snapshot), batch-inserts the pending
  /// rows into the clone — the clone copy-on-writes the table off the
  /// serving path — and installs the result via the same epoch swap a
  /// resize uses, then appends the rows to the retained row log and retires
  /// the drained buffer once no reader can hold it. Readers stay
  /// pinned-lock-free throughout and observe either (old table + overlay)
  /// or the new table, never a gap. A shard whose commit hits CapacityError
  /// transparently rebuilds at doubled geometry from its log (pending rows
  /// included) like Insert does; if the watermark policy is enabled, a
  /// post-commit occupancy at or above the watermark schedules a background
  /// doubling resize. Per-shard errors aggregate deterministically (lowest
  /// failing shard, "shard N: " prefix); a failed shard KEEPS its rows
  /// staged — still overlay-visible — so the caller can resize and retry.
  /// Works on deserialized filters too (no log to append to; the rows
  /// simply become part of the published tables).
  ///
  /// Striped: when more than one shard has staged records, `num_threads`
  /// workers (0 → options.build_threads, which 0-defaults to one per
  /// shard) drain the shards in parallel, InsertParallel-style — each
  /// worker commits a disjoint stripe under the per-shard writer mutexes,
  /// pinned to its stripe's node under an active NUMA policy. Error
  /// reporting stays deterministic regardless of thread count: the LOWEST
  /// failing shard's status wins, "shard N: "-prefixed. With one (or no)
  /// non-empty shard the commit runs inline on the calling thread exactly
  /// as before.
  Status CommitWrites(int num_threads = 0);

  /// CommitWrites on a background thread; the future carries its Status.
  std::future<Status> CommitWritesAsync();

  /// Staged-but-uncommitted records across all shards (inserts AND erase
  /// tombstones; not yet counted by num_rows()).
  uint64_t pending_writes() const;

  /// Compacts EVERY shard unconditionally: rebuilds each shard's table at
  /// its current geometry from the live rows of its retained log (erased
  /// rows dropped) and rewrites the log to the survivors. The result is
  /// bit-identical to a from-scratch batched build of the surviving row
  /// set, so it clears all erase residue. Serializes with writers per
  /// shard; readers stay pinned-lock-free and see the swap atomically.
  /// Fails on deserialized (log-less) filters.
  Status Compact();

  /// Completed shard compactions (watermark-triggered and explicit).
  uint64_t num_compactions() const {
    return num_compactions_.load(std::memory_order_relaxed);
  }

  /// Completed autocommit-triggered background shard commits (see
  /// ShardedCcfOptions::autocommit_pending_rows / autocommit_interval).
  uint64_t num_autocommits() const {
    return num_autocommits_.load(std::memory_order_relaxed);
  }

  /// Total retained-log rows across shards, dead rows included
  /// (diagnostics; takes each shard's writer mutex briefly).
  uint64_t retained_log_rows() const;

  /// Retained-log rows marked dead by committed erases and not yet
  /// compacted away (diagnostics; takes each shard's writer mutex briefly).
  uint64_t dead_log_rows() const;

  /// Completed watermark-triggered background resizes (a subset of
  /// num_resizes()).
  uint64_t num_watermark_resizes() const {
    return num_watermark_resizes_.load(std::memory_order_relaxed);
  }

  /// Blocks until every scheduled watermark resize has finished (their
  /// Statuses are advisory and dropped — the policy retries at the next
  /// commit if a background attempt failed). Deterministic tests and
  /// drain-before-measure tooling use this; serving callers never need it.
  void DrainMaintenance();

  /// Rebuilds shard `shard` at `new_num_buckets` buckets (0 → double the
  /// shard's current count) from its retained row log, publishing the
  /// replacement via epoch swap. Readers keep probing the old snapshot
  /// until the swap and are never blocked; the old table is reclaimed once
  /// the last reader unpins. Serializes with other writers of the shard.
  /// The rebuilt shard is bit-identical to a from-scratch batched build of
  /// the shard's rows at the new geometry. Fails on deserialized filters
  /// (the row log is not serialized) and on out-of-range shard indices.
  Status ResizeShard(int shard, uint64_t new_num_buckets = 0);

  /// ResizeShard on a background thread; the future carries its Status.
  std::future<Status> ResizeShardAsync(int shard,
                                       uint64_t new_num_buckets = 0);

  bool ContainsKey(uint64_t key) const override;
  bool Contains(uint64_t key, const Predicate& pred) const override;
  Status LookupBatch(std::span<const uint64_t> keys,
                     std::span<const Predicate> preds,
                     std::span<bool> out) const override;
  void ContainsKeyBatch(std::span<const uint64_t> keys,
                        std::span<bool> out) const override;

  /// Derives one key filter per shard, routed like the source filter. The
  /// per-shard derived filters alias the shard snapshots (no table copy)
  /// and stay valid even if a later resize retires the shard object.
  /// Snapshot semantics: the derivation covers COMMITTED rows only —
  /// staged-but-uncommitted rows join derived filters after the next
  /// CommitWrites (the direct query methods see them immediately).
  Result<std::unique_ptr<KeyFilter>> PredicateQuery(
      const Predicate& pred) const override;

  uint64_t SizeInBits() const override;
  double LoadFactor() const override;
  uint64_t num_entries() const override;
  uint64_t num_rows() const override;

  /// The per-shard configuration AT CONSTRUCTION (num_buckets is the
  /// initial per-shard value; shards may have grown since — see
  /// shard(i).config() for a shard's current geometry). Returned from an
  /// immutable member, so the reference stays valid across resizes and is
  /// safe to read concurrently with them.
  const CcfConfig& config() const override { return shard_config_; }
  CcfVariant variant() const override { return variant_; }

  /// Completed per-shard resizes over the filter's lifetime (auto-triggered
  /// and explicit).
  uint64_t num_resizes() const {
    return num_resizes_.load(std::memory_order_relaxed);
  }

  /// Whether online resize is available: true for filters built in-process
  /// (which retain their row log), false after Deserialize (serialized
  /// blobs carry tables, not rows).
  bool resizable() const { return resizable_; }

  /// Serialized-blob magic ("SCF2", bumped with the aligned word-array
  /// format); ConditionalCuckooFilter::Deserialize dispatches here when it
  /// leads a blob.
  static constexpr uint32_t kMagic = 0x53434632;

  /// Serializes the COMMITTED state (the published shard tables). Staged
  /// rows are not part of any table yet and are not serialized — call
  /// CommitWrites first if they must be captured. Shard blobs are 8-byte
  /// aligned within the container so alias-mode loads work through it.
  std::string Serialize() const override;
  /// With `alias` non-null, shard tables alias the blob (zero-copy); see
  /// ConditionalCuckooFilter::Deserialize(data, mapping).
  static Result<std::unique_ptr<ConditionalCuckooFilter>> Deserialize(
      std::string_view data, const AliasMapping* alias = nullptr);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// The shard's CURRENT filter. Quiescent-use accessor (tests, stats): the
  /// reference is valid until the shard is next resized.
  const ConditionalCuckooFilter& shard(int i) const {
    return *shards_[static_cast<size_t>(i)]->handle.Current();
  }

  /// Shard index of a key (uncorrelated with in-shard addressing).
  size_t ShardOf(uint64_t key) const {
    return static_cast<size_t>(shard_hasher_.Hash(key, 0) & shard_mask_);
  }

 private:
  /// \brief One shard's staged-but-uncommitted rows: the epoch-protected
  /// pending-row overlay.
  ///
  /// Publication protocol (the reason readers are wait-free): storage is
  /// sized at construction and never reallocated; the writer (holding the
  /// shard's writer mutex) writes a row's words and THEN publishes it with
  /// a release store of the new size, so a reader that acquires `size()`
  /// sees every word of rows [0, size). A full buffer is replaced wholesale
  /// — copy rows into a bigger block, swap the shard's pending pointer, and
  /// retire the old block into the epoch domain (recycled through the
  /// shard's spare slot once no reader can hold it). Rows use the retained
  /// row log's layout: keys + row-major attrs + two geometry-independent
  /// memo words per row, so a commit feeds them straight into InsertBatch's
  /// memo path and appends them to the log verbatim. Each record also
  /// carries an op tag: kOpInsert stages a row, kOpErase stages a tombstone
  /// for the (key, packed payload) class. num_erases_ is stored (relaxed)
  /// BEFORE the release size store, so a reader that acquires size() n and
  /// then reads num_erases() can never UNDERcount the erase records in
  /// [0, n) — overcounting (a concurrent appender mid-publish) only sends
  /// the reader down the exact slow path unnecessarily.
  class WriteBuffer {
   public:
    enum : uint8_t { kOpInsert = 0, kOpErase = 1 };

    WriteBuffer(size_t capacity, size_t num_attrs)
        : capacity_(capacity),
          num_attrs_(num_attrs),
          keys_(capacity),
          attrs_(capacity * num_attrs),
          memo_(2 * capacity),
          ops_(capacity) {}

    size_t capacity() const { return capacity_; }
    /// Reader-side row count; rows [0, size) are fully published.
    size_t size() const { return size_.load(std::memory_order_acquire); }
    /// Writer-side count (callers hold the shard's writer mutex).
    size_t size_unsync() const {
      return size_.load(std::memory_order_relaxed);
    }

    /// Writes record size_unsync() + offset WITHOUT publishing it
    /// (writer-side; requires size_unsync() + offset < capacity). Pair
    /// with PublishStaged: the staged group becomes visible with ONE
    /// release store, so a reader observes all of its records or none —
    /// the multi-record generalization of the update-as-atomic-swap
    /// pattern (a RangeCcf row's η dyadic label records ride this; a
    /// partially-visible level set would answer range queries false).
    void Stage(size_t offset, uint64_t key, std::span<const uint64_t> attrs,
               uint64_t key_hash, uint64_t payload,
               uint8_t op = kOpInsert) {
      WriteRecord(size_.load(std::memory_order_relaxed) + offset, key, attrs,
                  key_hash, payload, op);
    }

    /// Publishes `count` staged records atomically. `staged_erases` (the
    /// kOpErase records among them) is added BEFORE the release size
    /// store, preserving the reader's never-undercount contract.
    void PublishStaged(size_t count, size_t staged_erases = 0) {
      if (staged_erases != 0) {
        num_erases_.store(
            num_erases_.load(std::memory_order_relaxed) + staged_erases,
            std::memory_order_relaxed);
      }
      size_.store(size_.load(std::memory_order_relaxed) + count,
                  std::memory_order_release);
    }

    /// Appends one record (writer-side; requires size_unsync() < capacity).
    void Append(uint64_t key, std::span<const uint64_t> attrs,
                uint64_t key_hash, uint64_t payload,
                uint8_t op = kOpInsert) {
      Stage(0, key, attrs, key_hash, payload, op);
      PublishStaged(1, op == kOpErase ? 1 : 0);
    }

    /// Appends erase(old) + insert(new) published by ONE release store, so
    /// readers observe the update as an atomic swap — never the erased-only
    /// gap (writer-side; requires size_unsync() + 2 <= capacity).
    void AppendUpdate(uint64_t key, std::span<const uint64_t> old_attrs,
                      uint64_t old_hash, uint64_t old_payload,
                      std::span<const uint64_t> new_attrs, uint64_t new_hash,
                      uint64_t new_payload) {
      Stage(0, key, old_attrs, old_hash, old_payload, kOpErase);
      Stage(1, key, new_attrs, new_hash, new_payload, kOpInsert);
      PublishStaged(2, 1);
    }

    /// Copies the first `n` records of `from` (builds the replacement block
    /// before it is published; writer-side).
    void Adopt(const WriteBuffer& from, size_t n) {
      std::copy_n(from.keys_.begin(), n, keys_.begin());
      std::copy_n(from.attrs_.begin(), n * num_attrs_, attrs_.begin());
      std::copy_n(from.memo_.begin(), 2 * n, memo_.begin());
      std::copy_n(from.ops_.begin(), n, ops_.begin());
      size_t erases = 0;
      for (size_t i = 0; i < n; ++i) erases += from.ops_[i] == kOpErase;
      num_erases_.store(erases, std::memory_order_relaxed);
      size_.store(n, std::memory_order_relaxed);
    }

    /// Reuse a recycled block (writer-side; no reader can hold it anymore).
    void Reset() {
      num_erases_.store(0, std::memory_order_relaxed);
      size_.store(0, std::memory_order_relaxed);
    }

    /// Erase records among the published rows; read AFTER an acquire of
    /// size() — never undercounts [0, size), may transiently overcount.
    size_t num_erases() const {
      return num_erases_.load(std::memory_order_relaxed);
    }
    size_t num_erases_unsync() const {
      return num_erases_.load(std::memory_order_relaxed);
    }

    /// Per-record reads (valid for published records, or writer-side).
    uint8_t op(size_t i) const { return ops_[i]; }
    uint64_t key(size_t i) const { return keys_[i]; }
    uint64_t key_hash(size_t i) const { return memo_[2 * i]; }
    uint64_t payload(size_t i) const { return memo_[2 * i + 1]; }
    std::span<const uint64_t> attrs_row(size_t i) const {
      return {attrs_.data() + i * num_attrs_, num_attrs_};
    }

    /// Overlay probes (reader-side, any thread, no locks): exact matching
    /// over published records — a staged row (k, a) answers true for (k, P)
    /// iff P(a) AND no later-staged erase record killed its (k, payload)
    /// class, which is precisely the no-false-negative contract and
    /// introduces no approximation of its own. With no erases in the block
    /// the scan degenerates to the original forward pass. (Whether staged
    /// erases hide COMMITTED rows is the owning filter's job — see
    /// ShardedCcf::ResolveKeyWithOps.)
    bool ContainsKey(uint64_t key) const {
      size_t n = size();
      if (num_erases() == 0) {
        for (size_t i = 0; i < n; ++i) {
          if (keys_[i] == key) return true;
        }
        return false;
      }
      // Backward: an erase record is seen before every insert it kills, so
      // a dead-payload set collected on the way down decides liveness; a
      // re-insert staged AFTER an erase is visited first and stays live.
      std::vector<uint64_t> dead;
      for (size_t i = n; i-- > 0;) {
        if (keys_[i] != key) continue;
        uint64_t p = memo_[2 * i + 1];
        if (ops_[i] == kOpErase) {
          dead.push_back(p);
          continue;
        }
        if (std::find(dead.begin(), dead.end(), p) == dead.end()) return true;
      }
      return false;
    }
    bool Contains(uint64_t key, const Predicate& pred) const {
      size_t n = size();
      if (num_erases() == 0) {
        for (size_t i = 0; i < n; ++i) {
          if (keys_[i] == key &&
              pred.Matches(std::span<const uint64_t>(
                  attrs_.data() + i * num_attrs_, num_attrs_))) {
            return true;
          }
        }
        return false;
      }
      std::vector<uint64_t> dead;
      for (size_t i = n; i-- > 0;) {
        if (keys_[i] != key) continue;
        uint64_t p = memo_[2 * i + 1];
        if (ops_[i] == kOpErase) {
          dead.push_back(p);
          continue;
        }
        if (std::find(dead.begin(), dead.end(), p) == dead.end() &&
            pred.Matches(std::span<const uint64_t>(
                attrs_.data() + i * num_attrs_, num_attrs_))) {
          return true;
        }
      }
      return false;
    }

    /// Record views over the first `n` records (writer-side, for commit).
    std::span<const uint64_t> keys(size_t n) const {
      return {keys_.data(), n};
    }
    std::span<const uint64_t> attrs(size_t n) const {
      return {attrs_.data(), n * num_attrs_};
    }
    std::span<const uint64_t> memo(size_t n) const {
      return {memo_.data(), 2 * n};
    }

   private:
    void WriteRecord(size_t n, uint64_t key, std::span<const uint64_t> attrs,
                     uint64_t key_hash, uint64_t payload, uint8_t op) {
      keys_[n] = key;
      std::copy(attrs.begin(), attrs.end(),
                attrs_.begin() + static_cast<ptrdiff_t>(n * num_attrs_));
      memo_[2 * n] = key_hash;
      memo_[2 * n + 1] = payload;
      ops_[n] = op;
    }

    const size_t capacity_;
    const size_t num_attrs_;
    std::atomic<size_t> size_{0};
    /// Erase records among records [0, size_); see the class comment for
    /// the store-before-publish ordering contract.
    std::atomic<size_t> num_erases_{0};
    std::vector<uint64_t> keys_;
    std::vector<uint64_t> attrs_;  // row-major
    std::vector<uint64_t> memo_;   // 2 words per record
    std::vector<uint8_t> ops_;     // kOpInsert / kOpErase per record
  };

  /// Per-shard serving state: the epoch-swappable filter, the writer lock,
  /// the retained row log that resizes rebuild from, and the pending
  /// write-buffer overlay. The log mirrors every accepted row in arrival
  /// order together with its two geometry-independent memo words
  /// (salt-keyed key hash + packed payload), so a rebuild re-masks instead
  /// of re-hashing.
  struct Shard {
    Shard(EpochDomain* domain, std::unique_ptr<ConditionalCuckooFilter> f,
          int node)
        : handle(domain, std::move(f)), node(node) {}
    ~Shard() {
      delete pending.load(std::memory_order_relaxed);
      delete spare.load(std::memory_order_relaxed);
    }
    TableHandle<ConditionalCuckooFilter> handle;
    /// Dense node index (into domains_/node assignment); 0 when the NUMA
    /// policy is inactive. Immutable after construction.
    int node = 0;
    std::mutex writer_mu;
    std::vector<uint64_t> keys;   // guarded by writer_mu
    std::vector<uint64_t> attrs;  // row-major, guarded by writer_mu
    std::vector<uint64_t> memo;   // 2 words per row, guarded by writer_mu
    /// Tombstone bookkeeping over the log (all guarded by writer_mu): a
    /// committed erase marks its rows dead here EXACTLY — the log always
    /// knows the true live set, whatever the best-effort table reclamation
    /// managed — and compaction rewrites the log from the survivors.
    std::vector<uint8_t> dead;  // parallel to keys; 1 = erased row
    size_t dead_count = 0;
    /// key → log row indices, built lazily by the first CRUD commit and
    /// maintained by LogAppendRows/LogTruncate afterwards.
    std::unordered_map<uint64_t, std::vector<uint32_t>> row_index;
    bool index_built = false;
    /// Staged rows (null when none): readers load under an epoch pin;
    /// writers mutate/swap under writer_mu. Swapped-out blocks are retired
    /// into the epoch domain and recycled through `spare`.
    std::atomic<WriteBuffer*> pending{nullptr};
    /// Single-slot recycle stash fed by the epoch retire hook.
    std::atomic<WriteBuffer*> spare{nullptr};
    /// Guards against stacking duplicate watermark resizes for this shard.
    std::atomic<bool> resize_scheduled{false};
    /// Guards against stacking duplicate auto-commits for this shard.
    std::atomic<bool> commit_scheduled{false};
    /// When the shard's overlay went non-empty (guarded by writer_mu;
    /// meaningful only while the overlay has rows and the age trigger is
    /// enabled).
    std::chrono::steady_clock::time_point first_staged{};
  };

  /// One shard-group lookup task shipped to a node worker; defined in the
  /// .cc (rings only hold pointers to caller-stack tasks).
  struct LookupTask;
  /// A node-pinned lookup worker: its SPSC ring, the producer-side mutex
  /// that serializes concurrent querying threads into the single-producer
  /// contract, and the thread itself.
  struct NodeWorker;

  ShardedCcf(std::vector<std::unique_ptr<ConditionalCuckooFilter>> shards,
             ShardedCcfOptions options,
             std::shared_ptr<const NumaTopology> topo, bool numa_active);

  /// One resize attempt at the given geometry; caller holds writer_mu.
  Status ResizeShardLocked(Shard& shard, uint64_t new_num_buckets);
  /// Doubling-retry loop around ResizeShardLocked (auto-resize path);
  /// caller holds writer_mu and has just seen CapacityError.
  Status GrowShardLocked(Shard& shard, Status capacity_error);

  /// A pending buffer with room for `rows_needed` more rows, swapping in a
  /// grown (or recycled) block if necessary; caller holds writer_mu.
  WriteBuffer* PendingWithRoom(Shard& shard, size_t rows_needed);
  /// Retires a swapped-out buffer into the epoch domain; reclamation
  /// recycles it through the shard's spare slot.
  void RetireBuffer(Shard& shard, WriteBuffer* old);
  /// Commits shard `s`'s staged records (see CommitWrites); caller holds
  /// writer_mu. Dispatches to CommitShardCrudLocked when the pending block
  /// carries erase records.
  Status CommitShardLocked(size_t s, Shard& shard);
  /// The erase-aware commit: applies the staged records IN ORDER against a
  /// copy-on-write clone (insert runs via InsertBatch, tombstones via
  /// best-effort native slot deletion), then — only after the clone
  /// publishes — marks dead log rows and appends surviving inserts; caller
  /// holds writer_mu.
  Status CommitShardCrudLocked(size_t s, Shard& shard);
  /// Appends rows to the shard's retained log, keeping the dead vector and
  /// (if built) the row index in sync; caller holds writer_mu.
  void LogAppendRows(Shard& shard, std::span<const uint64_t> keys,
                     std::span<const uint64_t> attrs,
                     std::span<const uint64_t> memo);
  /// Drops log rows [old_rows, end) (rollback of a failed append); caller
  /// holds writer_mu.
  void LogTruncate(Shard& shard, size_t old_rows);
  /// Builds the key → log rows index on first CRUD use; caller holds
  /// writer_mu.
  void EnsureLogIndex(Shard& shard);
  /// Rebuilds the shard at its CURRENT geometry from live log rows and
  /// rewrites the log to the survivors; caller holds writer_mu.
  Status CompactShardLocked(Shard& shard);
  /// Runs CompactShardLocked when the dead fraction of the log crosses
  /// options_.compact_watermark; caller holds writer_mu.
  void MaybeCompactShard(Shard& shard);
  /// Schedules a background doubling resize if the shard's occupancy is at
  /// or above the watermark; caller holds writer_mu.
  void MaybeScheduleWatermarkResize(size_t s, Shard& shard);
  /// Schedules a background commit of shard `s` when its staged overlay
  /// crosses the autocommit size or age trigger; caller holds writer_mu
  /// and has just appended to the overlay.
  void MaybeScheduleAutoCommit(size_t s, Shard& shard);

  /// Exact reader slow path for a shard whose overlay stages erase records:
  /// staged liveness via the op-aware overlay probe, committed rows via the
  /// exclusion-filtered addressed probes (tombstoned classes hidden).
  /// `pred` null means key-only. Caller holds an epoch pin covering both
  /// loaded pointers.
  bool ResolveKeyWithOps(const CcfBase* base, const WriteBuffer* overlay,
                         uint64_t key, const Predicate* pred) const;

  /// Pins every per-node epoch domain (batch paths touch shards on all
  /// nodes; scalar paths pin just their shard's domain directly). Guard i
  /// covers domains_[i].
  std::vector<EpochDomain::Guard> PinAll() const;
  /// Every shard's current snapshot, loaded once under the caller's pins
  /// (guards[shard.node] must be active) — THE way batch read paths bind
  /// the shard set.
  std::vector<const CcfBase*> LoadBases(
      const std::vector<EpochDomain::Guard>& guards) const;
  /// Every shard's pending overlay, loaded once under the same pins; shards
  /// with no staged rows are null so the (common) no-pending batch pays one
  /// pointer load per shard and nothing else.
  std::vector<const WriteBuffer*> LoadOverlays() const;

  /// Resolves one shard's gathered broadcast keys against (base, overlay):
  /// the one implementation behind the synchronous loop AND the SPSC
  /// workers, which is what makes worker routing bit-identical by
  /// construction. `pred` null means key-only; results land at out[pos[j]].
  Status ResolveShardBroadcast(const CcfBase* base, const WriteBuffer* overlay,
                               std::span<const uint64_t> keys,
                               std::span<const size_t> pos,
                               const Predicate* pred, bool* out) const;
  /// Gathers keys per shard and resolves them node-aware: remote nodes'
  /// shard groups ship to their node workers over the SPSC rings, the
  /// caller's node resolves inline, and a full ring degrades to inline.
  /// Used by broadcast LookupBatch and ContainsKeyBatch when workers are
  /// running; callers hold pins on every domain.
  Status RoutedBroadcast(std::span<const CcfBase* const> bases,
                         std::span<const WriteBuffer* const> overlays,
                         std::span<const uint64_t> keys, const Predicate* pred,
                         bool* out) const;
  void StartWorkers();
  void StopWorkers();
  /// A node worker's main loop: pin to `node`, pop tasks, resolve, with a
  /// spin→yield→sleep idle backoff.
  void WorkerLoop(int node, NodeWorker* worker);

  /// Runs work(s) exactly once per shard across `threads` workers
  /// (threads <= 1 ⇒ inline loop on the caller). Under an active
  /// multi-node policy with threads >= num nodes, workers stripe
  /// node-major and pin to their node's cpu set so shard mutations run
  /// next to the shard's pages; otherwise plain modular striping (a pinned
  /// thread serves exactly one node, so fewer threads than nodes must stay
  /// unpinned to cover every shard). Shared by InsertParallel and the
  /// striped CommitWrites.
  void ForEachShardParallel(int threads,
                            const std::function<void(size_t)>& work);

  /// The shard's placement node for allocation binding: its dense node
  /// index under an active policy, -1 (no binding) otherwise.
  int AllocNode(const Shard& shard) const {
    return numa_active_ ? shard.node : -1;
  }

  /// Declared first so they are destroyed LAST: retired shard filters are
  /// freed by each domain's destructor after the handles are gone. One
  /// domain per node under an active NUMA policy (shard pin/unpin traffic
  /// stays node-local), exactly one otherwise.
  mutable std::vector<std::unique_ptr<EpochDomain>> domains_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ShardedCcfOptions options_;
  /// Topology snapshot taken at construction (placement decisions must not
  /// shift under a test override mid-life) and the resolved policy.
  std::shared_ptr<const NumaTopology> topo_;
  bool numa_active_ = false;
  /// Node-major lookup workers (node * lookup_workers_per_node + i); empty
  /// unless the policy is active, multi-node, and workers were requested.
  /// Mutable: const read paths push tasks into the rings.
  mutable std::vector<std::unique_ptr<NodeWorker>> workers_;
  std::atomic<bool> workers_stop_{false};
  /// Immutable copies taken at construction so config()/variant() never
  /// dereference a swappable shard object (a concurrent resize of shard 0
  /// could retire it mid-read).
  CcfConfig shard_config_;
  CcfVariant variant_;
  uint64_t shard_mask_ = 0;
  Hasher shard_hasher_;
  std::atomic<uint64_t> num_resizes_{0};
  std::atomic<uint64_t> num_watermark_resizes_{0};
  std::atomic<uint64_t> num_compactions_{0};
  std::atomic<uint64_t> num_autocommits_{0};
  /// In-flight watermark resizes (futures must be joined before the shards
  /// they reference die); reaped opportunistically, drained on destruction.
  mutable std::mutex maintenance_mu_;
  std::vector<std::future<Status>> maintenance_;  // guarded by maintenance_mu_
  bool resizable_ = true;
};

}  // namespace ccf

#endif  // CCF_CCF_SHARDED_CCF_H_
