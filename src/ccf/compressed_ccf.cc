#include "ccf/compressed_ccf.h"

#include "hash/fingerprint.h"
#include "hash/hasher.h"

namespace ccf {

Result<CompressedCcf> CompressedCcf::Build(
    CcfVariant variant, CcfConfig config, int wide_bits,
    const std::vector<uint64_t>& keys,
    const std::vector<std::vector<uint64_t>>& attrs) {
  if (keys.size() != attrs.size()) {
    return Status::Invalid("keys/attrs size mismatch");
  }
  if (wide_bits <= config.attr_fp_bits || wide_bits > 32) {
    return Status::Invalid(
        "wide_bits must exceed the compressed attr_fp_bits (and be <= 32)");
  }

  CompressedCcf out;
  out.wide_bits_ = wide_bits;
  out.salt_ = config.salt;

  // Stage 1: compute wide fingerprints per column and derive the
  // frequency-greedy narrow mapping.
  Hasher hasher(config.salt);
  int num_attrs = config.num_attrs;
  std::vector<std::vector<uint32_t>> wide_per_column(
      static_cast<size_t>(num_attrs));
  for (const auto& row : attrs) {
    if (static_cast<int>(row.size()) != num_attrs) {
      return Status::Invalid("row arity mismatch");
    }
    for (int a = 0; a < num_attrs; ++a) {
      wide_per_column[static_cast<size_t>(a)].push_back(AttributeFingerprint(
          hasher, row[static_cast<size_t>(a)], wide_bits,
          /*small_value_opt=*/true));
    }
  }
  for (int a = 0; a < num_attrs; ++a) {
    auto mapping = CompressFingerprintSpace(
        wide_per_column[static_cast<size_t>(a)], config.attr_fp_bits);
    out.added_collisions_.push_back(AddedCollisionProbability(
        wide_per_column[static_cast<size_t>(a)], mapping));
    out.mappings_.push_back(std::move(mapping));
  }

  // Stage 2: build the narrow CCF over remapped values. Small-value
  // optimization must be off — narrow codes are already the fingerprints.
  config.small_value_opt = false;
  CCF_ASSIGN_OR_RETURN(out.inner_,
                       ConditionalCuckooFilter::Make(variant, config));
  std::vector<uint64_t> row(static_cast<size_t>(num_attrs));
  for (size_t i = 0; i < keys.size(); ++i) {
    for (int a = 0; a < num_attrs; ++a) {
      row[static_cast<size_t>(a)] =
          out.RemapValue(a, attrs[i][static_cast<size_t>(a)]);
    }
    CCF_RETURN_NOT_OK(out.inner_->Insert(keys[i], row));
  }
  return out;
}

uint64_t CompressedCcf::RemapValue(int attr, uint64_t value) const {
  Hasher hasher(salt_);
  uint32_t wide =
      AttributeFingerprint(hasher, value, wide_bits_, /*small_value_opt=*/true);
  const auto& mapping = mappings_[static_cast<size_t>(attr)];
  auto it = mapping.find(wide);
  if (it != mapping.end()) return it->second;
  // Never-observed value: any narrow code works (it was not inserted, so a
  // match is an ordinary collision); derive one from the wide fingerprint.
  return wide & ((uint64_t{1} << inner_->config().attr_fp_bits) - 1);
}

bool CompressedCcf::Contains(uint64_t key, const Predicate& pred) const {
  Predicate remapped;
  for (const AttributeTerm& term : pred.terms()) {
    std::vector<uint64_t> values;
    values.reserve(term.values.size());
    for (uint64_t v : term.values) {
      values.push_back(RemapValue(term.attr_index, v));
    }
    remapped.AndIn(term.attr_index, std::move(values));
  }
  return inner_->Contains(key, remapped);
}

std::string EncodeFilterBlob(const ConditionalCuckooFilter& filter) {
  return CompressBlob(filter.Serialize());
}

Result<std::unique_ptr<ConditionalCuckooFilter>> DecodeFilterBlob(
    std::string_view blob) {
  CCF_ASSIGN_OR_RETURN(std::string raw, DecompressBlob(blob));
  return ConditionalCuckooFilter::Deserialize(raw);
}

}  // namespace ccf
