#include "ccf/stats.h"

#include <unordered_set>

#include "cuckoo/cuckoo_filter.h"

namespace ccf {

std::string CcfStats::ToString() const {
  std::string out;
  out += "buckets=" + std::to_string(num_buckets);
  out += " slots/bucket=" + std::to_string(slots_per_bucket);
  out += " occupied=" + std::to_string(occupied_entries);
  out += " load=" + std::to_string(load_factor);
  out += " distinct_fp=" + std::to_string(distinct_fingerprints);
  out += "\nbucket occupancy:";
  for (const auto& [k, v] : bucket_occupancy_histogram) {
    out += " " + std::to_string(k) + ":" + std::to_string(v);
  }
  out += "\npair duplication:";
  for (const auto& [k, v] : pair_duplication_histogram) {
    out += " " + std::to_string(k) + ":" + std::to_string(v);
  }
  return out;
}

CcfStats ComputeStats(const CcfBase& ccf) {
  const BucketTable& table = ccf.table();
  CcfStats stats;
  stats.num_buckets = table.num_buckets();
  stats.slots_per_bucket = table.slots_per_bucket();
  stats.occupied_entries = table.num_occupied();
  stats.load_factor = table.LoadFactor();

  std::unordered_set<uint32_t> fingerprints;
  std::unordered_set<uint64_t> seen_groups;
  for (uint64_t b = 0; b < table.num_buckets(); ++b) {
    stats.bucket_occupancy_histogram[table.CountOccupied(b)] += 1;
    for (int s = 0; s < table.slots_per_bucket(); ++s) {
      if (!table.occupied(b, s)) continue;
      uint32_t fp = table.fingerprint(b, s);
      fingerprints.insert(fp);
      uint64_t alt = cuckoo_addressing::AltBucket(ccf.hasher(), b, fp,
                                                  table.bucket_mask());
      uint64_t lo = b < alt ? b : alt;
      uint64_t hi = b < alt ? alt : b;
      uint64_t group =
          (lo * table.num_buckets() + hi) *
              (uint64_t{1} << table.fingerprint_bits()) +
          fp;
      if (!seen_groups.insert(group).second) continue;
      int count = table.CountFingerprint(b, fp);
      if (alt != b) count += table.CountFingerprint(alt, fp);
      stats.pair_duplication_histogram[count] += 1;
    }
  }
  stats.distinct_fingerprints = fingerprints.size();
  return stats;
}

}  // namespace ccf
