#include "ccf/fpr_model.h"

#include <algorithm>
#include <cmath>

namespace ccf {

double KeyOnlyFprBound(double mean_pair_occupancy, int key_fp_bits) {
  return std::min(1.0, mean_pair_occupancy * std::pow(2.0, -key_fp_bits));
}

double VectorEntryFpr(int attr_fp_bits, int num_nonmatching_attrs) {
  return std::pow(2.0, -static_cast<double>(attr_fp_bits) *
                           num_nonmatching_attrs);
}

double ChainedPredicateFprBound(std::span<const int> nonmatching_counts,
                                int attr_fp_bits) {
  double sum = 0.0;
  for (int v : nonmatching_counts) {
    sum += VectorEntryFpr(attr_fp_bits, v);
  }
  return std::min(1.0, sum);
}

double BloomFprApprox(int num_hashes, int num_bits, double num_items) {
  double h = static_cast<double>(num_hashes);
  double s = static_cast<double>(num_bits);
  return std::pow(1.0 - std::exp(-h * num_items / s), h);
}

double BloomPredicateFpr(double sketch_fpr, int num_absent_values) {
  return std::pow(sketch_fpr, num_absent_values);
}

double ComposedFpr(double p_key, double p_pred) {
  return std::min(1.0, p_key * p_pred);
}

}  // namespace ccf
