// Shared machinery for the four CCF variants: partial-key addressing over a
// BucketTable, the deterministic chain-of-bucket-pairs walk (§6.2), generic
// kick-based placement with rollback, and the marked derived key filter used
// by predicate-only queries.
#ifndef CCF_CCF_CCF_BASE_H_
#define CCF_CCF_CCF_BASE_H_

#include <algorithm>
#include <bit>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ccf/ccf.h"
#include "cuckoo/bucket_table.h"
#include "hash/hasher.h"
#include "sketch/attr_fingerprint.h"
#include "util/batch_pipeline.h"
#include "util/random.h"

namespace ccf {

/// \brief A bucket pair {ℓ, ℓ′} with ℓ′ = ℓ ⊕ h(κ).
struct BucketPair {
  uint64_t primary;
  uint64_t alt;

  /// Canonical id (order-independent) for cycle detection.
  uint64_t Canonical(uint64_t num_buckets) const {
    uint64_t lo = primary < alt ? primary : alt;
    uint64_t hi = primary < alt ? alt : primary;
    return lo * num_buckets + hi;
  }
  bool degenerate() const { return primary == alt; }
};

/// \brief Deterministic walk over the chain of bucket pairs of a fingerprint
/// (Lemma 2's sequence), with cycle detection and extension.
///
/// Both insertion and query construct identical walks, so cycle-extension
/// rounds are consistent on both sides. A revisited pair advances a rehash
/// round mixed into the chain hash (§6.2: "such cycles can be detected and
/// the chain can be extended").
class ChainWalk {
 public:
  ChainWalk(const Hasher* hasher, uint64_t bucket_mask, uint64_t start_bucket,
            uint32_t fp);

  const BucketPair& pair() const { return pair_; }
  int hops() const { return hops_; }

  /// Moves to the next bucket pair: ℓ̃ = h(min{ℓ,ℓ′}, κ), skipping already
  /// visited pairs via rehash rounds (bounded; falls through after
  /// kMaxCycleRounds to guarantee termination).
  void Advance();

 private:
  static constexpr uint32_t kMaxCycleRounds = 8;

  BucketPair MakePair(uint64_t bucket) const;
  bool Visited(uint64_t canonical) const;

  const Hasher* hasher_;
  uint64_t bucket_mask_;
  uint32_t fp_;
  BucketPair pair_;
  int hops_ = 0;
  std::vector<uint64_t> visited_;
};

/// \brief Common state + helpers for CCF implementations.
///
/// Table ownership: the BucketTable lives behind a shared immutable
/// snapshot (`std::shared_ptr<BucketTable>`). Read paths bind the snapshot
/// once per query/batch; PredicateQuery-derived filters alias it instead of
/// copying multi-megabyte tables; and mutating entry points copy-on-write
/// when a snapshot is shared out (EnsureTableUnique), so outstanding
/// snapshots stay frozen. The filter OBJECT itself still follows the
/// single-writer/multi-reader contract; whole-object replacement under
/// live readers is ShardedCcf's epoch-swap layer.
class CcfBase : public ConditionalCuckooFilter {
 public:
  uint64_t SizeInBits() const override { return table_->SizeInBits(); }
  double LoadFactor() const override { return table_->LoadFactor(); }
  uint64_t num_entries() const override { return table_->num_occupied(); }
  uint64_t num_rows() const override { return num_rows_; }
  const CcfConfig& config() const override { return config_; }

  /// The effective chain cap: config.max_chain, or kHardChainCap when 0.
  int ChainCap() const {
    return config_.max_chain > 0 ? config_.max_chain : kHardChainCap;
  }

  const BucketTable& table() const { return *table_; }
  const Hasher& hasher() const { return hasher_; }

  /// The current immutable table snapshot. Sharing is cheap (refcount);
  /// writers transparently unshare before mutating, so the returned
  /// snapshot never changes underneath the caller.
  std::shared_ptr<const BucketTable> table_snapshot() const { return table_; }

  /// The geometry-independent memo words of one row (the two words per row
  /// of the InsertBatch hash memo): the salt-keyed key hash and the packed
  /// payload word. Lets containers (ShardedCcf's retained row log) memoize
  /// rows arriving through scalar Insert so later online resizes re-place
  /// them without re-hashing.
  void MemoizeRow(uint64_t key, std::span<const uint64_t> attrs,
                  uint64_t* key_hash, uint64_t* payload) const {
    *key_hash = hasher_.Hash(key, 0);
    *payload = PackRowPayload(attrs);
  }

  /// Resolves Contains for a pre-hashed key: `bucket` and `fp` must come
  /// from KeyAddress (equivalently cuckoo_addressing::IndexAndFingerprint
  /// with this filter's hasher/geometry) for some key k; then
  /// ContainsAddressed(bucket, fp, pred) == Contains(k, pred). This is the
  /// second-pass hook of the batched hot path, also used by ShardedCcf.
  virtual bool ContainsAddressed(uint64_t bucket, uint32_t fp,
                                 const Predicate& pred) const = 0;

  /// ContainsKey for a pre-hashed key (§7.1: identical for every variant —
  /// the first bucket pair always holds a copy of a present key).
  bool ContainsKeyAddressed(uint64_t bucket, uint32_t fp) const {
    return CountFpInPair(PairOf(bucket, fp), fp) > 0;
  }

  /// ContainsAddressed with staged-erase exclusions (ShardedCcf's tombstone
  /// overlay): entries whose FULL payload word equals one of `excluded` are
  /// treated as non-matching, but still count toward chain saturation —
  /// they are physically present until commit reclaims them, so the walk
  /// topology is unchanged and unrelated keys keep their no-false-negative
  /// guarantee. `excluded` holds packed payload memo words of erased row
  /// classes of THE QUERIED KEY only (the caller matched them by exact key),
  /// so hiding an equal-word entry can only suppress rows the erase
  /// legitimately targets. Callers must pass an empty span when
  /// table().slot_bits() > 64 (no packed payload word exists there).
  virtual bool ContainsAddressedExcluding(
      uint64_t bucket, uint32_t fp, const Predicate& pred,
      std::span<const uint64_t> excluded) const = 0;

  /// Key-only twin of ContainsAddressedExcluding: at least one fp copy whose
  /// payload word is not excluded. Base = pair-local scan; the chained
  /// variant overrides with the full walk (a key whose surviving copies sit
  /// further down the chain must not vanish because its first-pair copies
  /// are all staged-erased).
  virtual bool ContainsKeyAddressedExcluding(
      uint64_t bucket, uint32_t fp, std::span<const uint64_t> excluded) const;

  /// Best-effort physical deletion of ONE entry of the row class identified
  /// by its geometry-independent memo words (MemoizeRow output: salt-keyed
  /// key hash + packed payload). Duplicate-count aware per variant: the
  /// chained variant only deletes from an unsaturated (terminal) pair so
  /// walk reachability and the §7.1 first-pair invariant survive; the Bloom
  /// variant only deletes an entry whose sketch word equals the row's
  /// (unfolded) word; Mixed skips converted fragments. Returns true when an
  /// entry was deleted; false leaves residue for compaction to reclaim
  /// (one-sided: residue can only cause false positives, never false
  /// negatives). No-op (false) when slot_bits() > 64.
  bool EraseRowMemoized(uint64_t key_hash, uint64_t payload);

  /// Overrides the logical row count. Class erases kill rows no variant
  /// hook can count — one entry may stand for several collapsed
  /// duplicates, and unreclaimable residue skips the hook entirely — so
  /// the sharded CRUD commit sets the count from its retained-log plan,
  /// which is exact.
  void SetNumRows(uint64_t n) { num_rows_ = n; }

  /// Prefetched two-pass batch lookup (see ConditionalCuckooFilter): pass 1
  /// hashes a block of keys and prefetches both buckets of each pair; pass
  /// 2 resolves via ContainsAddressed. Bit-identical to the scalar loop.
  /// The broadcast (single-predicate) shape additionally compiles the
  /// predicate's value fingerprints once for the whole batch.
  Status LookupBatch(std::span<const uint64_t> keys,
                     std::span<const Predicate> preds,
                     std::span<bool> out) const override;

  /// Key-only membership is CountFpInPair > 0 for every variant (§7.1), so
  /// the batched form lives here once.
  void ContainsKeyBatch(std::span<const uint64_t> keys,
                        std::span<bool> out) const override;

  /// The write-side twin of the batched lookup hot path, shared by all four
  /// variants: instantiates the library two-wave pipeline over the rows —
  /// hash a block (or re-mask `hash_memo` on a rebuild), radix-cluster by
  /// primary bucket, prefetch both buckets of each pair, then wave 1 runs
  /// the variant's displacement-free placement (TryInsertNoKick: dedupe +
  /// free-slot writes against cached lines) and wave 2 completes only the
  /// leftovers with the full scalar logic (InsertAddressed: kicks, chain
  /// walks, Bloom conversion). Deterministic: identical inputs (and memo
  /// state) yield bit-identical tables, which is what makes memoized
  /// doubling rebuilds reproducible against from-scratch ones.
  Status InsertBatch(std::span<const uint64_t> keys,
                     std::span<const uint64_t> attrs,
                     std::vector<uint64_t>* hash_memo = nullptr) override;

  std::string Serialize() const override;

 protected:
  CcfBase(CcfConfig config, BucketTable table);

  /// The shared batch skeleton, instantiating the library-wide two-pass
  /// pipeline (util/batch_pipeline.h): pass 1 computes the bucket pair and
  /// fingerprint of every key; the block is then radix-clustered by primary
  /// bucket, prefetched, and resolved via `resolve(index, pair, fp)` with
  /// the lines (likely) cached. The pair is handed through so resolvers
  /// that can consume it directly (the variant broadcast overrides) skip
  /// the alt-bucket rehash; the generic per-key-predicate fallback still
  /// resolves via ContainsAddressed(bucket, fp, ...) and re-derives it.
  template <typename Resolver>
  void BatchResolve(std::span<const uint64_t> keys, std::span<bool> out,
                    Resolver&& resolve) const {
    struct Addr {
      uint64_t cluster_key;
      BucketPair pair;
      uint32_t fp;
    };
    // One snapshot bind for the whole batch: every prefetch and resolve of
    // this pipeline runs against the same immutable table.
    const BucketTable& table = *table_;
    BatchPipelineOptions options;
    options.cluster_bits = std::bit_width(table.bucket_mask());
    RunBatchPipeline<Addr>(
        keys.size(), options,
        [&](size_t i) {
          Addr a;
          uint64_t bucket;
          KeyAddress(keys[i], &bucket, &a.fp);
          a.pair = PairOf(bucket, a.fp);
          a.cluster_key = a.pair.primary;
          return a;
        },
        [&](const Addr& a) {
          table.PrefetchBucket(a.pair.primary);
          if (!a.pair.degenerate()) table.PrefetchBucket(a.pair.alt);
        },
        [&](size_t i, const Addr& a) { out[i] = resolve(i, a.pair, a.fp); });
  }

  /// Two-wave flavour of BatchResolve for resolvers whose pair scan can
  /// settle on the primary bucket alone (every ScanPairWithFp-shaped
  /// broadcast: a matching entry in the primary bucket proves membership
  /// outright). Wave 1 prefetches and scans ONLY primary buckets; a key
  /// whose primary scan matches never fetches its alt bucket at all — on
  /// out-of-cache tables that removes the second DRAM access for the
  /// common present-key case. Inconclusive keys prefetch their alt bucket
  /// immediately and finish in wave 2 with the pair's full copy count.
  /// `matches(b, s)` is the per-entry predicate (as in ScanPairWithFp);
  /// `terminal(fp, pair, count)` decides keys with no matching entry from
  /// the pair's total fp-copy count (false for pair-local variants; the
  /// chained variant continues its chain walk when count == max_dupes).
  /// Bit-identical to resolving via ScanPairWithFp: scan order (primary
  /// slots ascending, then alt) and count semantics are unchanged.
  template <typename EntryMatcher, typename Terminal>
  void BatchResolveTwoWave(std::span<const uint64_t> keys,
                           std::span<bool> out, EntryMatcher&& matches,
                           Terminal&& terminal) const {
    struct Addr {
      uint64_t cluster_key;
      BucketPair pair;
      uint32_t fp;
      int primary_count;
    };
    const BucketTable& table = *table_;
    BatchPipelineOptions options;
    options.cluster_bits = std::bit_width(table.bucket_mask());
    RunBatchPipelineTwoWave<Addr>(
        keys.size(), options,
        [&](size_t i) {
          Addr a;
          uint64_t bucket;
          KeyAddress(keys[i], &bucket, &a.fp);
          a.pair = PairOf(bucket, a.fp);
          a.cluster_key = a.pair.primary;
          a.primary_count = 0;
          return a;
        },
        [&](const Addr& a) { table.PrefetchBucket(a.pair.primary); },
        [&](size_t i, Addr& a) {
          auto [count, matched] =
              ScanBucketWithFp(a.pair.primary, a.fp, matches);
          if (matched) {
            out[i] = true;
            return true;
          }
          if (a.pair.degenerate()) {
            out[i] = terminal(a.fp, a.pair, count);
            return true;
          }
          a.primary_count = count;
          return false;
        },
        [&](const Addr& a) { table.PrefetchBucket(a.pair.alt); },
        [&](size_t i, const Addr& a) {
          auto [alt_count, matched] =
              ScanBucketWithFp(a.pair.alt, a.fp, matches);
          out[i] = matched ? true
                           : terminal(a.fp, a.pair,
                                      a.primary_count + alt_count);
        });
  }

  /// The payload word wave 1 would store for this row — the packed
  /// attribute-fingerprint vector (Plain/Chained), the vector shifted past
  /// the mode/seq bits (Mixed), or the row's composed Bloom sketch word
  /// (Bloom). Depends only on attrs and the salt, never on table geometry,
  /// which is what lets doubling rebuilds reuse it from the hash memo.
  /// Must return 0 when the variant's packed path is unavailable
  /// (slot_bits() > 64); TryInsertNoKick then ignores it.
  virtual uint64_t PackRowPayload(std::span<const uint64_t> attrs) const = 0;

  /// Wave-1 hook of InsertBatch: attempt one row whose (pair, fp) address
  /// is precomputed and whose buckets are (likely) cache-resident, using
  /// only displacement-free operations — collapse a duplicate, fold into an
  /// existing entry, or write a free slot of the pair. `payload` is
  /// PackRowPayload(attrs), precomputed in the address pass (possibly from
  /// the rebuild memo). Returns true when the row is fully handled; false
  /// defers it to wave 2. Must not kick, walk chains, or convert (those
  /// touch un-prefetched lines and consume displacement randomness).
  virtual bool TryInsertNoKick(const BucketPair& pair, uint32_t fp,
                               std::span<const uint64_t> attrs,
                               uint64_t payload) = 0;

  /// Wave-2 hook of InsertBatch and the body of the scalar Insert: the
  /// variant's complete insertion logic from a precomputed address
  /// (Algorithm 3/4 placement with kicks / chain walk / conversion).
  virtual Status InsertAddressed(const BucketPair& pair, uint32_t fp,
                                 std::span<const uint64_t> attrs) = 0;

  /// Variant hook of EraseRowMemoized: delete one entry of the addressed
  /// row class if a duplicate-safe deletion exists (see EraseRowMemoized).
  /// The table is already unshared; callers guarantee slot_bits() <= 64.
  virtual bool EraseRowAddressed(const BucketPair& pair, uint32_t fp,
                                 uint64_t payload) = 0;

  /// An entry's full payload word — what the packed wave-1 paths store and
  /// what the memo's payload word equals for every variant (vector packs,
  /// Mixed's mode/seq-zero unconverted word, Bloom's sketch word). Only
  /// meaningful when slot_bits() <= 64.
  uint64_t EntryPayloadWord(uint64_t b, int s) const {
    return table_->GetPayloadField(b, s, 0, table_->payload_bits());
  }

  /// True when `word` is one of the staged-erased payload words.
  static bool PayloadExcluded(uint64_t word,
                              std::span<const uint64_t> excluded) {
    return std::find(excluded.begin(), excluded.end(), word) !=
           excluded.end();
  }

  /// Broadcast-shape hook of LookupBatch: one predicate, every key. The
  /// default resolves through ContainsAddressed; fingerprint-vector
  /// variants override it to match against a once-compiled predicate.
  virtual void LookupBatchBroadcast(std::span<const uint64_t> keys,
                                    const Predicate& pred,
                                    std::span<bool> out) const;

  /// Variant-specific serialized state (counters etc.). Defaults to none.
  virtual void SaveExtras(ByteWriter* writer) const { (void)writer; }
  virtual Status LoadExtras(ByteReader* reader) {
    (void)reader;
    return Status::OK();
  }

  /// Restores table + counters from a reader (after config was applied via
  /// Make). Used by ConditionalCuckooFilter::Deserialize. With `alias`
  /// non-null the loaded table aliases the reader's buffer (zero-copy).
  Status LoadState(ByteReader* reader, const AliasMapping* alias = nullptr);
  friend Result<std::unique_ptr<ConditionalCuckooFilter>>
  DeserializeCcfImpl(std::string_view data, const AliasMapping* alias);

  /// A slot's full logical contents held "in hand" during displacement.
  struct RawEntry {
    uint32_t fp = 0;
    std::vector<uint64_t> payload_words;
  };

  /// Computes (primary bucket, key fingerprint) for a key.
  void KeyAddress(uint64_t key, uint64_t* bucket, uint32_t* fp) const;

  /// The pair of a (bucket, fp).
  BucketPair PairOf(uint64_t bucket, uint32_t fp) const;

  /// Occupied slots in the pair with the given fingerprint, as
  /// (bucket, slot); degenerate pairs are scanned once.
  std::vector<std::pair<uint64_t, int>> SlotsWithFp(const BucketPair& pair,
                                                    uint32_t fp) const;

  int CountFpInPair(const BucketPair& pair, uint32_t fp) const;

  /// Allocation-free pair scan for the query hot path: calls
  /// `matches(bucket, slot)` on every occupied slot of the pair holding
  /// `fp`, short-circuiting on the first true. Returns {copies seen so
  /// far, matched}; when matched is false the count covers the whole pair
  /// (the chained variant's saturation test). Unlike SlotsWithFp this
  /// never touches the heap — per-query allocations would dominate the
  /// batched path's prefetch win.
  template <typename EntryMatcher>
  std::pair<int, bool> ScanPairWithFp(const BucketPair& pair, uint32_t fp,
                                      EntryMatcher&& matches) const {
    auto [count, matched] = ScanBucketWithFp(pair.primary, fp, matches);
    if (matched) return {count, true};
    if (!pair.degenerate()) {
      auto [alt_count, alt_matched] = ScanBucketWithFp(pair.alt, fp, matches);
      count += alt_count;
      if (alt_matched) return {count, true};
    }
    return {count, false};
  }

  /// One bucket of ScanPairWithFp: {copies counted, matched}, matched
  /// short-circuiting the count as there. The walk itself is
  /// BucketTable::ForEachOccupiedMatch — fingerprint-first over one wide
  /// MatchMask compare, ascending slot order, occupancy confirmed on hits
  /// only — shared with every other fp scan in the library.
  template <typename EntryMatcher>
  std::pair<int, bool> ScanBucketWithFp(uint64_t b, uint32_t fp,
                                        EntryMatcher&& matches) const {
    int count = 0;
    bool matched = table_->ForEachOccupiedMatch(b, fp, [&](int s) {
      ++count;
      return matches(b, s);
    });
    return {count, matched};
  }

  /// First free slot in the pair (primary preferred); slot == -1 if full.
  std::pair<uint64_t, int> FreeSlotInPair(const BucketPair& pair) const;

  RawEntry ReadRaw(uint64_t bucket, int slot) const;
  void WriteRaw(uint64_t bucket, int slot, const RawEntry& entry);

  /// Generic cuckoo placement with kicks and rollback.
  ///
  /// Places `fp` into a slot of `pair`, displacing residents as needed: the
  /// classic homeless-entry chain where each displaced resident relocates to
  /// the other bucket of ITS pair (so Lemma 1's ≤d invariant is preserved by
  /// construction). On success, `payload_writer(bucket, slot)` runs once for
  /// the new entry's final slot. On failure (kick budget exhausted or every
  /// victim pinned by `can_evict`), all displacements are rolled back and
  /// the table is exactly as before the call.
  template <typename PayloadWriter, typename CanEvict>
  bool PlaceWithKicks(const BucketPair& pair, uint32_t fp,
                      PayloadWriter&& payload_writer, CanEvict&& can_evict);

  /// PlaceWithKicks with every resident evictable.
  template <typename PayloadWriter>
  bool PlaceWithKicks(const BucketPair& pair, uint32_t fp,
                      PayloadWriter&& payload_writer) {
    return PlaceWithKicks(pair, fp, std::forward<PayloadWriter>(payload_writer),
                          [](uint64_t, int) { return true; });
  }

  /// Copy-on-write gate of every mutating entry point: if the current table
  /// snapshot is shared out (a derived MarkedKeyFilter or an external
  /// table_snapshot() holder aliases it), clone it first so the outstanding
  /// snapshot stays immutable. One refcount load when unshared.
  void EnsureTableUnique() {
    if (table_.use_count() > 1) {
      table_ = std::make_shared<BucketTable>(*table_);
    }
  }

  /// Packed-compare scalar Insert fast path (ROADMAP item): reuses the
  /// variant's displacement-free wave-1 placement (single-word dupe compare
  /// + PutSlot free-slot store) for row-at-a-time writers. Gated off by
  /// config.reproducible_scalar (the default) because per-row placement can
  /// in principle differ from the historical SlotsWithFp path on exotic
  /// geometries — `ccf_joblight --build scalar` outputs stay bit-identical
  /// unless a caller opts in. Returns true when the row was fully handled.
  bool ScalarInsertFast(const BucketPair& pair, uint32_t fp,
                        std::span<const uint64_t> attrs) {
    if (config_.reproducible_scalar) return false;
    return TryInsertNoKick(pair, fp, attrs, PackRowPayload(attrs));
  }

  CcfConfig config_;
  /// The shared immutable table snapshot (never null). Mutating paths go
  /// through EnsureTableUnique() first; read paths may bind `*table_` once
  /// per query/batch.
  std::shared_ptr<BucketTable> table_;
  Hasher hasher_;
  Rng rng_;
  uint64_t num_rows_ = 0;
};

template <typename PayloadWriter, typename CanEvict>
bool CcfBase::PlaceWithKicks(const BucketPair& pair, uint32_t fp,
                             PayloadWriter&& payload_writer,
                             CanEvict&& can_evict) {
  auto [free_bucket, free_slot] = FreeSlotInPair(pair);
  if (free_slot >= 0) {
    table_->Put(free_bucket, free_slot, fp);
    payload_writer(free_bucket, free_slot);
    return true;
  }

  // Both buckets full: displacement chain. trail[i] is the slot whose
  // original resident became homeless at step i; trail[0] receives the new
  // entry. On failure the chain is unwound in reverse, restoring the
  // original state bit-for-bit.
  std::vector<std::pair<uint64_t, int>> trail;
  std::vector<RawEntry> displaced;  // [i] = original resident of trail[i]
  uint64_t cur = pair.degenerate() || rng_.NextBool(0.5) ? pair.primary
                                                         : pair.alt;
  bool success = false;
  for (int kick = 0; kick < config_.max_kicks; ++kick) {
    // Choose an evictable victim in `cur`, starting at a random slot.
    int b = table_->slots_per_bucket();
    int start = static_cast<int>(rng_.NextBelow(static_cast<uint64_t>(b)));
    int victim = -1;
    for (int i = 0; i < b; ++i) {
      int s = (start + i) % b;
      bool on_trail = false;
      for (const auto& [tb, ts] : trail) {
        if (tb == cur && ts == s) {
          on_trail = true;
          break;
        }
      }
      if (!on_trail && table_->occupied(cur, s) && can_evict(cur, s)) {
        victim = s;
        break;
      }
    }
    if (victim < 0) {
      // Dead end: every resident of `cur` is pinned or already on the
      // trail. Nothing has moved yet, so restarting the walk from the
      // target pair is free — and necessary: duplicate-heavy rows (η
      // dyadic labels per key) clump same-fp entries whose alt buckets
      // point back along the trail, dead-ending a self-avoiding walk long
      // before the kick budget is spent. A fresh trail draws different
      // victims from the rng and escapes; only a genuinely saturated
      // neighbourhood burns the whole budget.
      if (trail.empty()) break;  // the target pair itself is pinned solid
      trail.clear();
      displaced.clear();
      cur = pair.degenerate() || rng_.NextBool(0.5) ? pair.primary
                                                    : pair.alt;
      continue;
    }

    trail.emplace_back(cur, victim);
    displaced.push_back(ReadRaw(cur, victim));
    const RawEntry& homeless = displaced.back();

    // The displaced resident relocates to the other bucket of its own pair.
    uint64_t mate = cuckoo_addressing::AltBucket(hasher_, cur, homeless.fp,
                                                 table_->bucket_mask());
    int dest = table_->FirstFreeSlot(mate);
    if (dest >= 0) {
      table_->Erase(cur, victim);
      WriteRaw(mate, dest, homeless);
      success = true;
      break;
    }
    cur = mate;  // mate full: displace one of its residents next round
  }

  if (!success) {
    // Nothing was moved yet (moves only happen on the success step), so the
    // table is untouched; just report failure.
    return false;
  }

  // A slot at trail.back() is now free. Shift each displaced resident one
  // step down the chain: resident of trail[i] moves into trail[i+1]'s slot
  // (which is its own pair's bucket by construction of the walk), freeing
  // trail[0] for the new entry.
  for (size_t i = trail.size(); i-- > 1;) {
    const auto& [tb, ts] = trail[i];
    table_->Erase(tb, ts);
    WriteRaw(tb, ts, displaced[i - 1]);
  }
  const auto& [nb, ns] = trail[0];
  table_->Erase(nb, ns);
  table_->Put(nb, ns, fp);
  payload_writer(nb, ns);
  return true;
}

/// \brief Derived key filter produced by predicate-only queries on
/// fingerprint-vector variants (Plain/Chained/Mixed).
///
/// Holds a SHARED immutable snapshot of the CCF's table (no copy — the
/// source filter copy-on-writes if it is later mutated, and the snapshot
/// outlives the source even if an epoch swap retires the filter object)
/// plus one mark bit per slot; marked entries did not match the predicate
/// but must remain so chains stay walkable (§6.2's "additional bit to mark
/// the entry as non-matching").
class MarkedKeyFilter : public KeyFilter {
 public:
  /// \param chain_on_full_pair  true for the chained variant (a pair holding
  ///        max_dupes copies may continue elsewhere); false for pair-local
  ///        variants (Plain/Mixed).
  MarkedKeyFilter(std::shared_ptr<const BucketTable> table, BitVector marks,
                  Hasher hasher, int max_dupes, int chain_cap,
                  bool chain_on_full_pair);

  bool Contains(uint64_t key) const override;
  void ContainsBatch(std::span<const uint64_t> keys,
                     std::span<bool> out) const override;
  /// Reported as a standalone sketch (table + marks), matching the paper's
  /// space accounting, even though the table bits are physically shared
  /// with the source filter.
  uint64_t SizeInBits() const override {
    return table_->SizeInBits() + marks_.size();
  }

 private:
  bool ContainsAddressed(uint64_t bucket, uint32_t fp) const;

  std::shared_ptr<const BucketTable> table_;
  BitVector marks_;
  Hasher hasher_;
  int max_dupes_;
  int chain_cap_;
  bool chain_on_full_pair_;
};

/// \brief KeyFilter adapter over a plain CuckooFilter (Algorithm 2's output
/// for the Bloom variant).
class CuckooKeyFilter : public KeyFilter {
 public:
  explicit CuckooKeyFilter(CuckooFilter filter) : filter_(std::move(filter)) {}
  bool Contains(uint64_t key) const override { return filter_.Contains(key); }
  void ContainsBatch(std::span<const uint64_t> keys,
                     std::span<bool> out) const override {
    filter_.ContainsBatch(keys, out);
  }
  uint64_t SizeInBits() const override { return filter_.SizeInBits(); }
  const CuckooFilter& filter() const { return filter_; }

 private:
  CuckooFilter filter_;
};

}  // namespace ccf

#endif  // CCF_CCF_CCF_BASE_H_
