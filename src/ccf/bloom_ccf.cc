#include "ccf/bloom_ccf.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace ccf {

namespace {

// §10.4: either a small fixed count (the paper's preferred setting) or the
// eq. (2) optimum assuming 2 attribute vectors per key.
int SketchHashes(const CcfConfig& config) {
  if (!config.optimize_bloom_hashes) return config.bloom_hashes;
  double n = 2.0 * config.num_attrs;
  double k = static_cast<double>(config.bloom_bits) / n *
             std::numbers::ln2_v<double>;
  return std::clamp(static_cast<int>(std::lround(k)), 1, 16);
}

}  // namespace

BloomCcf::BloomCcf(CcfConfig config, BucketTable table)
    : CcfBase(config, std::move(table)), sketch_hashes_(SketchHashes(config)) {}

Result<std::unique_ptr<ConditionalCuckooFilter>> BloomCcf::Make(
    const CcfConfig& config) {
  if (config.bloom_bits < 1) {
    return Status::Invalid("bloom_bits must be >= 1");
  }
  CCF_ASSIGN_OR_RETURN(
      BucketTable table,
      BucketTable::Make(config.num_buckets, config.slots_per_bucket,
                        config.key_fp_bits, config.bloom_bits));
  return std::unique_ptr<ConditionalCuckooFilter>(
      new BloomCcf(config, std::move(table)));
}

BloomSketchView BloomCcf::EntrySketch(uint64_t bucket, int slot) const {
  // The view mutates bits through a non-const BitVector pointer; Contains
  // paths only ever call Contains() on it.
  auto* bits = const_cast<BitVector*>(table_->bits());
  return BloomSketchView(bits, table_->PayloadBitOffset(bucket, slot),
                         static_cast<size_t>(config_.bloom_bits), &hasher_,
                         sketch_hashes_);
}

bool BloomCcf::EntryMatches(uint64_t bucket, int slot,
                            const Predicate& pred) const {
  BloomSketchView sketch = EntrySketch(bucket, slot);
  for (const AttributeTerm& term : pred.terms()) {
    bool any = false;
    for (uint64_t v : term.values) {
      if (sketch.Contains(BloomSketchView::EncodeAttr(
              static_cast<uint32_t>(term.attr_index), v))) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

void BloomCcf::FoldRow(uint64_t bucket, int slot,
                       std::span<const uint64_t> attrs) {
  BloomSketchView sketch = EntrySketch(bucket, slot);
  for (size_t i = 0; i < attrs.size(); ++i) {
    sketch.Insert(BloomSketchView::EncodeAttr(static_cast<uint32_t>(i),
                                              attrs[i]));
  }
}

Status BloomCcf::Insert(uint64_t key, std::span<const uint64_t> attrs) {
  if (static_cast<int>(attrs.size()) != config_.num_attrs) {
    return Status::Invalid("attribute count does not match schema");
  }
  EnsureTableUnique();
  uint64_t bucket;
  uint32_t fp;
  KeyAddress(key, &bucket, &fp);
  BucketPair pair = PairOf(bucket, fp);
  // Packed-compare scalar fast path (opt-in via
  // CcfConfig::reproducible_scalar = false); falls through to the full
  // addressed insertion when displacement or chain/conversion work is
  // needed.
  if (ScalarInsertFast(pair, fp, attrs)) return Status::OK();
  return InsertAddressed(pair, fp, attrs);
}

Status BloomCcf::InsertAddressed(const BucketPair& pair, uint32_t fp,
                                 std::span<const uint64_t> attrs) {
  // One entry per fingerprint per pair (same occupancy as a cuckoo filter):
  // further rows of the key fold into the existing entry's Bloom sketch.
  auto slots = SlotsWithFp(pair, fp);
  if (!slots.empty()) {
    FoldRow(slots.front().first, slots.front().second, attrs);
    ++num_rows_;
    return Status::OK();
  }

  bool placed = PlaceWithKicks(pair, fp, [&](uint64_t b, int s) {
    table_->ClearPayload(b, s);
    FoldRow(b, s, attrs);
  });
  if (!placed) {
    return Status::CapacityError("bloom CCF: cuckoo kick budget exhausted");
  }
  ++num_rows_;
  return Status::OK();
}

uint64_t BloomCcf::PackRowPayload(std::span<const uint64_t> attrs) const {
  if (table_->slot_bits() > 64) return 0;
  // The row's sketch word, composed from the same probe stream
  // BloomSketchView::Insert walks — the k probe positions per attribute
  // are salt-and-window-size functions only, so the word survives
  // rebuilds at any bucket count.
  const size_t window_bits = static_cast<size_t>(config_.bloom_bits);
  uint64_t word = 0;
  for (size_t i = 0; i < attrs.size(); ++i) {
    BloomSketchView::ProbeSeed seed = BloomSketchView::SeedFor(
        hasher_,
        BloomSketchView::EncodeAttr(static_cast<uint32_t>(i), attrs[i]));
    for (int j = 0; j < sketch_hashes_; ++j) {
      word |= uint64_t{1} << BloomSketchView::ProbeAt(seed, j, window_bits);
    }
  }
  return word;
}

bool BloomCcf::TryInsertNoKick(const BucketPair& pair, uint32_t fp,
                               std::span<const uint64_t> attrs,
                               uint64_t payload) {
  // First occupied copy of κ in the pair absorbs the row (matches
  // SlotsWithFp's front(): primary bucket first, ascending slots).
  if (table_->slot_bits() > 64) {
    // Oversized sketch windows: fold through BloomSketchView (cold
    // fallback).
    uint64_t hit_b = 0;
    int hit_s = -1;
    ScanPairWithFp(pair, fp, [&](uint64_t b, int s) {
      hit_b = b;
      hit_s = s;
      return true;
    });
    if (hit_s >= 0) {
      FoldRow(hit_b, hit_s, attrs);
      ++num_rows_;
      return true;
    }
    auto [b, s] = FreeSlotInPair(pair);
    if (s < 0) return false;  // displacement needed: wave 2
    table_->Put(b, s, fp);
    table_->ClearPayload(b, s);
    FoldRow(b, s, attrs);
    ++num_rows_;
    return true;
  }
  // Packed fast path: the row's sketch word was composed once in the
  // address pass (PackRowPayload, possibly straight from the rebuild
  // memo); fold with one payload-word OR or place with one whole-slot
  // store.
  (void)attrs;
  const uint64_t sketch_word = payload;
  uint64_t hit_b = 0;
  int hit_s = -1;
  auto scan = [&](uint64_t b) {
    uint64_t m = table_->MatchMask(b, fp) & table_->OccupiedMask(b);
    if (m == 0) return false;
    hit_b = b;
    hit_s = std::countr_zero(m);
    return true;
  };
  if (!scan(pair.primary) && !pair.degenerate()) scan(pair.alt);
  if (hit_s >= 0) {
    uint64_t stored =
        table_->GetPayloadField(hit_b, hit_s, 0, config_.bloom_bits);
    table_->SetPayloadField(hit_b, hit_s, 0, config_.bloom_bits,
                           stored | sketch_word);
    ++num_rows_;
    return true;
  }
  auto [b, s] = FreeSlotInPair(pair);
  if (s < 0) return false;  // displacement needed: wave 2
  table_->PutSlot(b, s, fp, sketch_word);
  ++num_rows_;
  return true;
}

bool BloomCcf::EraseRowAddressed(const BucketPair& pair, uint32_t fp,
                                 uint64_t payload) {
  // A Bloom entry is the OR-fold of every row of the key that landed on its
  // fingerprint, so a physical delete is only safe when the entry's sketch
  // word EQUALS the erased row's word — i.e. nothing else was folded in (or
  // everything folded is a sketch-subset of this row, which the caller must
  // rule out by erasing only when no other live rows of the key remain; see
  // ShardedCcf's key-liveness gate). Entries with extra bits set are
  // residue for compaction.
  uint64_t hit_b = 0;
  int hit_s = -1;
  ScanPairWithFp(pair, fp, [&](uint64_t b, int s) {
    if (table_->GetPayloadField(b, s, 0, config_.bloom_bits) == payload) {
      hit_b = b;
      hit_s = s;
      return true;
    }
    return false;
  });
  if (hit_s < 0) return false;
  table_->Erase(hit_b, hit_s);
  return true;
}

bool BloomCcf::ContainsKey(uint64_t key) const {
  uint64_t bucket;
  uint32_t fp;
  KeyAddress(key, &bucket, &fp);
  return CountFpInPair(PairOf(bucket, fp), fp) > 0;
}

bool BloomCcf::Contains(uint64_t key, const Predicate& pred) const {
  uint64_t bucket;
  uint32_t fp;
  KeyAddress(key, &bucket, &fp);
  return ContainsAddressed(bucket, fp, pred);
}

bool BloomCcf::ContainsAddressed(uint64_t bucket, uint32_t fp,
                                 const Predicate& pred) const {
  return ScanPairWithFp(PairOf(bucket, fp), fp,
                        [&](uint64_t b, int s) {
                          return EntryMatches(b, s, pred);
                        })
      .second;
}

bool BloomCcf::ContainsAddressedExcluding(
    uint64_t bucket, uint32_t fp, const Predicate& pred,
    std::span<const uint64_t> excluded) const {
  if (excluded.empty()) return ContainsAddressed(bucket, fp, pred);
  CCF_DCHECK(table_->slot_bits() <= 64);
  // An excluded word only hides an entry whose sketch is EXACTLY the erased
  // row's fold — an entry other rows folded into keeps matching (one-sided
  // residue until compaction). ShardedCcf stages Bloom erases only when no
  // other live rows of the key remain, which keeps this exact-word hide
  // sound.
  return ScanPairWithFp(PairOf(bucket, fp), fp,
                        [&](uint64_t b, int s) {
                          return !PayloadExcluded(EntryPayloadWord(b, s),
                                                  excluded) &&
                                 EntryMatches(b, s, pred);
                        })
      .second;
}

void BloomCcf::LookupBatchBroadcast(std::span<const uint64_t> keys,
                                    const Predicate& pred,
                                    std::span<bool> out) const {
  // Consumes the precomputed pair directly (no alt-bucket rehash), and
  // precompiles the sketch probes: every entry's Bloom window has the same
  // size (bloom_bits), so the k probe positions of each (term, value) are
  // entry-independent and are hashed ONCE per batch here instead of once
  // per candidate entry. Matching then only tests window-relative bits —
  // bit-identical to BloomSketchView::Contains, whose probe stream
  // (SeedFor/ProbeAt) is reused verbatim.
  struct CompiledValue {
    std::vector<uint32_t> positions;  // k logical bits within the window
  };
  struct CompiledTerm {
    std::vector<CompiledValue> values;
  };
  std::vector<CompiledTerm> compiled;
  const size_t window_bits = static_cast<size_t>(config_.bloom_bits);
  compiled.reserve(pred.terms().size());
  for (const AttributeTerm& term : pred.terms()) {
    CompiledTerm ct;
    ct.values.reserve(term.values.size());
    for (uint64_t v : term.values) {
      CompiledValue cv;
      cv.positions.reserve(static_cast<size_t>(sketch_hashes_));
      BloomSketchView::ProbeSeed seed = BloomSketchView::SeedFor(
          hasher_, BloomSketchView::EncodeAttr(
                       static_cast<uint32_t>(term.attr_index), v));
      for (int i = 0; i < sketch_hashes_; ++i) {
        cv.positions.push_back(static_cast<uint32_t>(
            BloomSketchView::ProbeAt(seed, i, window_bits)));
      }
      ct.values.push_back(std::move(cv));
    }
    compiled.push_back(std::move(ct));
  }

  const BitVector& bits = *table_->bits();
  auto entry_matches = [&](uint64_t b, int s) {
    size_t base = table_->PayloadBitOffset(b, s);
    for (const CompiledTerm& term : compiled) {
      bool any = false;
      for (const CompiledValue& value : term.values) {
        bool all = true;
        for (uint32_t pos : value.positions) {
          if (!bits.GetBit(base + pos)) {
            all = false;
            break;
          }
        }
        if (all) {
          any = true;
          break;
        }
      }
      if (!any) return false;
    }
    return true;
  };

  // Single-wave: with a selective predicate a primary-only sketch match is
  // rare, so the alt-deferring two-wave flavour does not pay here (see
  // PlainCcf::LookupBatchBroadcast).
  BatchResolve(keys, out, [&](size_t, const BucketPair& pair, uint32_t fp) {
    return ScanPairWithFp(pair, fp, entry_matches).second;
  });
}

Result<std::unique_ptr<KeyFilter>> BloomCcf::PredicateQuery(
    const Predicate& pred) const {
  CuckooFilterConfig fc;
  fc.num_buckets = table_->num_buckets();
  fc.slots_per_bucket = table_->slots_per_bucket();
  fc.fingerprint_bits = config_.key_fp_bits;
  fc.salt = config_.salt;
  fc.max_kicks = config_.max_kicks;
  CCF_ASSIGN_OR_RETURN(CuckooFilter filter, CuckooFilter::Make(fc));
  for (uint64_t b = 0; b < table_->num_buckets(); ++b) {
    for (int s = 0; s < table_->slots_per_bucket(); ++s) {
      if (!table_->occupied(b, s)) continue;
      if (EntryMatches(b, s, pred)) {
        // Positions are preserved, so partial-key addressing still finds
        // every retained fingerprint (Algorithm 2).
        filter.RawPut(b, s, table_->fingerprint(b, s));
      }
    }
  }
  return std::unique_ptr<KeyFilter>(new CuckooKeyFilter(std::move(filter)));
}

}  // namespace ccf
