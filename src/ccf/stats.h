// Introspection utilities: occupancy and duplication statistics of built
// filters. Used by the ablation benches and handy when tuning §8 parameters
// in production.
#ifndef CCF_CCF_STATS_H_
#define CCF_CCF_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ccf/ccf_base.h"

namespace ccf {

/// \brief Aggregate occupancy statistics of a CCF's bucket table.
struct CcfStats {
  uint64_t num_buckets = 0;
  int slots_per_bucket = 0;
  uint64_t occupied_entries = 0;
  double load_factor = 0.0;
  /// Histogram: occupied-slot count per bucket → number of buckets.
  std::map<int, uint64_t> bucket_occupancy_histogram;
  /// Histogram: copies of one fingerprint within a bucket pair → count of
  /// (pair, fingerprint) groups. Lemma 1 says no bin above max_dupes.
  std::map<int, uint64_t> pair_duplication_histogram;
  /// Distinct fingerprint values present.
  uint64_t distinct_fingerprints = 0;

  std::string ToString() const;
};

/// Computes statistics by scanning a CCF's table (any variant).
CcfStats ComputeStats(const CcfBase& ccf);

}  // namespace ccf

#endif  // CCF_CCF_STATS_H_
